"""Cross-validation of the fast campaign engine against the reference model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import CacheConfig
from repro.cache.fastsim import CompiledTrace, FastHierarchySimulator, simulate_trace
from repro.cache.hierarchy import HierarchyConfig, MemoryTimings
from repro.cpu.core import TraceDrivenCore
from repro.cpu.trace import AccessKind, Trace
from repro.platform.leon3 import platform_setup
from repro.workloads.eembc import eembc_trace


def tiny_config(l1_placement="rm", l1_replacement="random", l1_write="write-through", with_l2=True):
    il1 = CacheConfig(
        name="IL1", size_bytes=512, ways=2, line_size=32,
        placement=l1_placement, replacement=l1_replacement, write_policy=l1_write,
    )
    dl1 = CacheConfig(
        name="DL1", size_bytes=512, ways=2, line_size=32,
        placement=l1_placement, replacement=l1_replacement, write_policy=l1_write,
    )
    l2 = (
        CacheConfig(
            name="L2", size_bytes=2048, ways=4, line_size=32,
            placement="hrp", replacement="random", write_policy="write-back",
        )
        if with_l2
        else None
    )
    return HierarchyConfig(il1=il1, dl1=dl1, l2=l2, timings=MemoryTimings())


def random_trace(draw_addresses, kinds):
    trace = Trace(name="hypothesis")
    for kind, address in zip(kinds, draw_addresses):
        trace.append(kind, address)
    return trace


class TestCompiledTrace:
    def test_unique_lines_and_ids(self):
        trace = Trace()
        trace.fetch(0x1000)
        trace.fetch(0x1004)   # same line
        trace.load(0x2000)
        compiled = CompiledTrace(trace, line_size=32)
        assert len(compiled) == 3
        assert len(compiled.unique_lines) == 2
        assert compiled.line_ids[0] == compiled.line_ids[1]
        assert compiled.footprint_bytes == 64

    def test_kind_constants_match_access_kind(self):
        from repro.cache.fastsim import FETCH_KIND, LOAD_KIND, STORE_KIND

        assert FETCH_KIND == int(AccessKind.FETCH)
        assert LOAD_KIND == int(AccessKind.LOAD)
        assert STORE_KIND == int(AccessKind.STORE)


class TestAgainstReference:
    """The fast engine must match the reference model bit-exactly."""

    @pytest.mark.parametrize("placement", ["modulo", "xor", "hrp", "rm"])
    @pytest.mark.parametrize("replacement", ["random", "lru"])
    def test_policies_match_on_kernel_trace(self, placement, replacement, small_kernel_trace):
        config = tiny_config(l1_placement=placement, l1_replacement=replacement)
        core = TraceDrivenCore(config, small_kernel_trace)
        for seed in (0, 1, 12345):
            assert core.run_fast(seed).as_dict() == core.run_reference(seed).as_dict()

    def test_write_back_l1_matches(self, small_kernel_trace):
        config = tiny_config(l1_write="write-back")
        core = TraceDrivenCore(config, small_kernel_trace)
        for seed in (3, 17):
            assert core.run_fast(seed).as_dict() == core.run_reference(seed).as_dict()

    def test_no_l2_matches(self, small_kernel_trace):
        config = tiny_config(with_l2=False)
        core = TraceDrivenCore(config, small_kernel_trace)
        assert core.run_fast(7).as_dict() == core.run_reference(7).as_dict()

    def test_leon3_config_matches_on_eembc(self):
        trace = eembc_trace("rspeed")
        core = TraceDrivenCore(platform_setup("rm"), trace)
        assert core.run_fast(11).as_dict() == core.run_reference(11).as_dict()

    @given(
        seed=st.integers(0, 2**32 - 1),
        accesses=st.lists(
            st.tuples(
                st.sampled_from([0, 1, 2]),
                st.integers(0, 63),
            ),
            min_size=10,
            max_size=200,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_traces_match_property(self, seed, accesses):
        trace = Trace(name="hypothesis")
        for kind, line in accesses:
            trace.append(kind, 0x40000000 + line * 32)
        config = tiny_config()
        core = TraceDrivenCore(config, trace)
        assert core.run_fast(seed).as_dict() == core.run_reference(seed).as_dict()


class TestFastEngineBehaviour:
    def test_same_seed_is_deterministic(self, small_kernel_trace):
        config = tiny_config()
        simulator = FastHierarchySimulator(config, CompiledTrace(small_kernel_trace))
        assert simulator.run(42) == simulator.run(42)

    def test_different_seeds_change_results_for_random_placement(self, small_kernel_trace):
        config = tiny_config()
        simulator = FastHierarchySimulator(config, CompiledTrace(small_kernel_trace))
        cycles = {simulator.run(seed).cycles for seed in range(25)}
        assert len(cycles) > 1

    def test_modulo_placement_is_seed_invariant(self, small_kernel_trace):
        config = tiny_config(l1_placement="modulo", l1_replacement="lru")
        # Make the L2 deterministic as well.
        config = HierarchyConfig(
            il1=config.il1,
            dl1=config.dl1,
            l2=CacheConfig(
                name="L2", size_bytes=2048, ways=4, line_size=32,
                placement="modulo", replacement="lru", write_policy="write-back",
            ),
            timings=config.timings,
        )
        simulator = FastHierarchySimulator(config, CompiledTrace(small_kernel_trace))
        assert len({simulator.run(seed).cycles for seed in range(10)}) == 1

    def test_unsupported_replacement_rejected(self, small_kernel_trace):
        config = tiny_config(l1_replacement="plru")
        with pytest.raises(ValueError):
            FastHierarchySimulator(config, CompiledTrace(small_kernel_trace)).run(0)

    def test_simulate_trace_wrapper(self, small_kernel_trace):
        result = simulate_trace(small_kernel_trace, tiny_config(), seed=5)
        assert result.cycles > 0
        assert result.il1_accesses + result.dl1_accesses == len(small_kernel_trace)

    def test_miss_rates_are_rates(self, small_kernel_trace):
        result = simulate_trace(small_kernel_trace, tiny_config(), seed=5)
        assert 0.0 <= result.il1_miss_rate <= 1.0
        assert 0.0 <= result.dl1_miss_rate <= 1.0
        assert 0.0 <= result.l2_miss_rate <= 1.0


class TestBatchApi:
    """run_batch must agree with per-seed run() calls on a fresh simulator."""

    @pytest.mark.parametrize("placement", ["modulo", "xor", "hrp", "rm"])
    def test_batch_matches_individual_runs(self, placement, small_kernel_trace):
        config = tiny_config(l1_placement=placement)
        compiled = CompiledTrace(small_kernel_trace)
        seeds = [0, 1, 7, 12345]
        batch = FastHierarchySimulator(config, compiled).run_batch(seeds)
        individual = [
            FastHierarchySimulator(config, compiled).run(seed) for seed in seeds
        ]
        assert batch == individual

    def test_batch_matches_reference_engine(self, small_kernel_trace):
        config = tiny_config(l1_placement="modulo", l1_replacement="lru")
        core = TraceDrivenCore(config, small_kernel_trace)
        seeds = [3, 5, 8]
        batch = core.run_batch(seeds)
        reference = [core.run_reference(seed) for seed in seeds]
        assert [r.as_dict() for r in batch] == [r.as_dict() for r in reference]

    def test_core_run_batch_rejects_unknown_engine(self, small_kernel_trace):
        core = TraceDrivenCore(tiny_config(), small_kernel_trace)
        with pytest.raises(ValueError, match="unknown engine"):
            core.run_batch([1], engine="warp")

    def test_simulate_trace_batch_wrapper(self, small_kernel_trace):
        from repro.cache.fastsim import simulate_trace_batch

        results = simulate_trace_batch(small_kernel_trace, tiny_config(), seeds=[4, 9])
        assert results == [
            simulate_trace(small_kernel_trace, tiny_config(), seed=4),
            simulate_trace(small_kernel_trace, tiny_config(), seed=9),
        ]
