"""Batch-pipeline equivalence: vectorized MBPTA must match the scalar path.

The acceptance bar for the batch pipeline is **exact float equality** with
the per-campaign loop — for synthetic corner cases here and, in
:class:`TestAllStudiesEquality`, for the real campaigns of every registered
study.
"""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.analysis.experiments import ExperimentSettings
from repro.pwcet import (
    MBPTA_MIN_RUNS,
    MbptaConfig,
    apply_mbpta,
    apply_mbpta_batch,
    available_estimators,
    compare_estimators,
    fit_gumbel,
    fit_gumbel_batch,
    iid_assessment,
    iid_assessment_batch,
)
from repro.study import available_studies, get_study
from repro.study.runner import execute_scenarios


def assert_results_identical(batch, scalar):
    """Field-by-field exact equality of two MbptaResult objects."""
    assert batch.assessment == scalar.assessment
    assert batch.fit == scalar.fit
    assert batch.curve == scalar.curve
    assert batch.pwcet == scalar.pwcet
    assert batch.pwcet_ci == scalar.pwcet_ci
    assert batch.discarded_runs == scalar.discarded_runs
    assert batch.estimator == scalar.estimator
    assert list(batch.samples) == list(scalar.samples)


def sample_matrices():
    """Corner-case matrices: ties, odd lengths, degenerate and trending rows."""
    rng = np.random.default_rng(7)
    rounded = np.round(
        scipy_stats.gumbel_r.rvs(loc=20000, scale=300, size=(12, 300), random_state=rng)
    )
    odd = scipy_stats.gumbel_r.rvs(loc=5000, scale=90, size=(9, 253), random_state=rng)
    mixed = np.vstack(
        [
            np.full((2, 40), 1234.0),  # fully degenerate
            np.linspace(0.0, 1000.0, 40)[None, :].repeat(2, axis=0),  # trending
            np.round(  # heavy ties at the threshold
                scipy_stats.gumbel_r.rvs(loc=100, scale=2, size=(8, 40), random_state=rng)
            ),
        ]
    )
    return {"rounded": rounded, "odd-length": odd, "mixed": mixed}


class TestAdmissionBatteryEquality:
    @pytest.mark.parametrize("name", ["rounded", "odd-length", "mixed"])
    def test_iid_assessment_batch_bitwise_equal(self, name):
        matrix = sample_matrices()[name]
        batch = iid_assessment_batch(matrix)
        for row, assessment in zip(matrix, batch):
            assert assessment == iid_assessment(list(row))

    def test_batch_rejects_1d_input(self):
        with pytest.raises(ValueError, match="2-D"):
            iid_assessment_batch(np.arange(40.0))


class TestFitBatchEquality:
    @pytest.mark.parametrize("block_size", [1, 2, 7, 20])
    def test_fit_gumbel_batch_bitwise_equal(self, block_size):
        matrix = sample_matrices()["rounded"]
        batch = fit_gumbel_batch(matrix, block_size=block_size)
        for row, fit in zip(matrix, batch):
            assert fit == fit_gumbel(list(row), block_size=block_size)

    def test_mle_batch_matches_loop(self):
        matrix = sample_matrices()["rounded"][:3]
        batch = fit_gumbel_batch(matrix, block_size=5, method="mle")
        for row, fit in zip(matrix, batch):
            assert fit == fit_gumbel(list(row), block_size=5, method="mle")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown fit method"):
            fit_gumbel_batch(sample_matrices()["mixed"], method="moments")


class TestPipelineEquality:
    @pytest.mark.parametrize("estimator", ["gumbel-pwm", "gumbel-mle", "exponential-excess"])
    @pytest.mark.parametrize("name", ["rounded", "mixed"])
    def test_batch_equals_scalar_loop(self, estimator, name):
        matrix = sample_matrices()[name]
        config = MbptaConfig()
        batch = apply_mbpta_batch(matrix, config=config, estimator=estimator)
        for row, result in zip(matrix, batch):
            assert_results_identical(
                result, apply_mbpta(list(row), config=config, estimator=estimator)
            )

    @pytest.mark.parametrize(
        "estimator", ["gumbel-pwm", "gumbel-mle", "exponential-excess"]
    )
    def test_bootstrap_intervals_identical(self, estimator):
        """The vectorized CI projection is bit-identical to the loop for
        every registered curve family (Gumbel and exponential-tail)."""
        matrix = sample_matrices()["rounded"][:4]
        config = MbptaConfig(bootstrap=30)
        batch = apply_mbpta_batch(matrix, config=config, estimator=estimator)
        for row, result in zip(matrix, batch):
            scalar = apply_mbpta(list(row), config=config, estimator=estimator)
            assert result.pwcet_ci == scalar.pwcet_ci
            for low, high in result.pwcet_ci.values():
                assert low <= high

    def test_batch_pwcet_projection_matches_scalar_curves(self):
        """_pwcet_values_batch == the per-curve scalar loop, bitwise,
        including degenerate (near-constant) resamples."""
        from repro.pwcet.protocol import _pwcet_values_batch
        from repro.pwcet.registry import get_estimator

        matrix = np.vstack(
            [
                sample_matrices()["rounded"][:3],
                # Near-constant campaign: exercises the degenerate-tail
                # fallback fits (pinned threshold, epsilon scale).
                np.full((1, sample_matrices()["rounded"].shape[1]), 500.0)
                + np.arange(sample_matrices()["rounded"].shape[1]) * 1e-9,
            ]
        )
        config = MbptaConfig()
        for name in ("gumbel-pwm", "exponential-excess"):
            estimates = get_estimator(name).fit_batch(matrix, config)
            for probability in (1e-12, 1e-15, 0.5):
                batch = _pwcet_values_batch(estimates, probability)
                loop = [e.curve.pwcet(probability) for e in estimates]
                assert batch.tolist() == loop

    def test_bootstrap_deterministic(self):
        matrix = sample_matrices()["rounded"][:2]
        config = MbptaConfig(bootstrap=20)
        first = apply_mbpta_batch(matrix, config=config)
        second = apply_mbpta_batch(matrix, config=config)
        assert [r.pwcet_ci for r in first] == [r.pwcet_ci for r in second]

    def test_rejects_under_minimum_runs(self):
        with pytest.raises(ValueError, match="at least"):
            apply_mbpta_batch(np.ones((3, MBPTA_MIN_RUNS - 1)))

    def test_ragged_input_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            apply_mbpta_batch([[1.0] * 24, [1.0] * 30])

    def test_flat_sample_rejected_with_clear_error(self):
        # A single campaign passed without the enclosing list is the most
        # likely caller mistake; it must get the shape error, not a
        # TypeError from the row iteration.
        with pytest.raises(ValueError, match="2-D"):
            apply_mbpta_batch([1.0] * 30)

    def test_require_iid_names_failing_campaign(self):
        matrix = np.vstack(
            [
                np.round(
                    scipy_stats.gumbel_r.rvs(
                        loc=100, scale=10, size=(1, 300),
                        random_state=np.random.default_rng(3),
                    )
                ),
                np.linspace(0.0, 1000.0, 300)[None, :],
            ]
        )
        with pytest.raises(ValueError, match="campaign 1 failed"):
            apply_mbpta_batch(matrix, require_iid=True)


class TestAllStudiesEquality:
    """The acceptance criterion: batch == loop over every registered study."""

    SETTINGS = ExperimentSettings(runs=24, scale=0.25)

    @pytest.mark.parametrize("study_name", sorted(available_studies()))
    def test_batched_pipeline_matches_per_campaign_path(self, study_name):
        study = get_study(study_name)
        scenarios = study.plan(self.SETTINGS)
        if not any(scenario.runs >= MBPTA_MIN_RUNS for scenario in scenarios):
            pytest.skip(f"{study_name} runs no MBPTA-eligible campaigns")
        results = execute_scenarios(scenarios)
        groups = {}
        for outcome in results:
            if outcome.campaign.runs < MBPTA_MIN_RUNS:
                continue
            key = (outcome.campaign.runs, outcome.scenario.mbpta)
            groups.setdefault(key, []).append(outcome)
        assert groups, f"{study_name} produced no eligible campaigns"
        for (_, config), outcomes in groups.items():
            batch = apply_mbpta_batch(
                [outcome.campaign.execution_times for outcome in outcomes],
                config=config,
            )
            for outcome, result in zip(outcomes, batch):
                assert_results_identical(
                    result,
                    apply_mbpta(outcome.campaign.execution_times, config=config),
                )


class TestCompareEstimators:
    def test_cross_view_over_all_estimators(self):
        rng = np.random.default_rng(11)
        samples = {
            "a": list(
                np.round(
                    scipy_stats.gumbel_r.rvs(
                        loc=20000, scale=300, size=240, random_state=rng
                    )
                )
            ),
            "b": list(
                np.round(
                    scipy_stats.gumbel_r.rvs(
                        loc=30000, scale=150, size=300, random_state=rng
                    )
                )
            ),
        }
        comparison = compare_estimators(samples)
        assert comparison.labels == ["a", "b"]
        assert set(comparison.estimators) == set(available_estimators())
        for label in samples:
            for name in comparison.estimators:
                assert comparison.pwcet(label, name, 1e-15) > max(samples[label])
        rendered = comparison.format()
        assert "pWCET gumbel-pwm" in rendered
        assert "i.i.d. ok" in rendered

    def test_matches_apply_mbpta(self):
        rng = np.random.default_rng(12)
        samples = {
            "only": list(
                scipy_stats.gumbel_r.rvs(loc=500, scale=20, size=200, random_state=rng)
            )
        }
        comparison = compare_estimators(samples, estimators=["gumbel-pwm"])
        direct = apply_mbpta(samples["only"])
        assert comparison.cells["only"]["gumbel-pwm"]["pwcet"] == direct.pwcet

    def test_rejects_unknown_estimator(self):
        with pytest.raises(ValueError, match="registered estimators"):
            compare_estimators({"a": [1.0] * 40}, estimators=["weibull"])

    def test_rejects_short_campaign(self):
        with pytest.raises(ValueError, match="at least"):
            compare_estimators({"a": [1.0] * 10})
