"""Tests for the memory-access trace container."""

import pytest

from repro.cpu.trace import AccessKind, MemoryAccess, Trace


class TestConstruction:
    def test_append_and_len(self):
        trace = Trace()
        trace.fetch(0x1000)
        trace.load(0x2000)
        trace.store(0x3000)
        assert len(trace) == 3
        assert trace.counts() == {"fetches": 1, "loads": 1, "stores": 1}

    def test_mismatched_lists_rejected(self):
        with pytest.raises(ValueError):
            Trace(kinds=[0, 1], addresses=[0])

    def test_from_accesses(self):
        accesses = [
            MemoryAccess(AccessKind.FETCH, 0x0),
            MemoryAccess(AccessKind.STORE, 0x40),
        ]
        trace = Trace.from_accesses(accesses, name="built")
        assert trace.name == "built"
        assert trace[1].is_store

    def test_addresses_are_masked_to_32_bits(self):
        trace = Trace()
        trace.load(0x1_0000_0040)
        assert trace.addresses[0] == 0x40

    def test_iteration_yields_memory_accesses(self):
        trace = Trace()
        trace.fetch(0x10)
        access = next(iter(trace))
        assert access.is_instruction
        assert access.address == 0x10


class TestCombinators:
    def test_extend(self):
        a = Trace()
        a.fetch(0x0)
        b = Trace()
        b.load(0x20)
        a.extend(b)
        assert len(a) == 2

    def test_repeated(self):
        trace = Trace()
        trace.fetch(0x0)
        trace.load(0x40)
        repeated = trace.repeated(3)
        assert len(repeated) == 6
        assert repeated.addresses == [0x0, 0x40] * 3

    def test_repeated_rejects_negative(self):
        with pytest.raises(ValueError):
            Trace().repeated(-1)


class TestFootprints:
    def test_unique_lines(self):
        trace = Trace()
        trace.load(0x0)
        trace.load(0x10)   # same line
        trace.load(0x20)
        assert trace.unique_lines(32) == [0x0, 0x20]
        assert trace.footprint_bytes(32) == 64

    def test_unique_lines_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            Trace().unique_lines(0)

    def test_split_by_kind(self):
        trace = Trace()
        trace.fetch(0x0)
        trace.load(0x1000)
        trace.store(0x1020)
        code, data = trace.split_by_kind(32)
        assert code == [0x0]
        assert data == [0x1000, 0x1020]

    def test_summary_fields(self):
        trace = Trace(name="demo")
        trace.fetch(0x0)
        trace.load(0x1000)
        summary = trace.summary()
        assert summary["name"] == "demo"
        assert summary["accesses"] == 2
        assert summary["code_footprint_bytes"] == 32
        assert summary["data_footprint_bytes"] == 32
