"""The repro.exec subsystem: planner, queue/leases, workers, reassembly.

The invariant under test everywhere: any shard size, worker count and
interruption pattern reassembles to a campaign **bit-exact** with serial
execution — including after SIGKILLing a worker mid-shard and resuming.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

import repro
from repro.analysis.campaign import run_campaign
from repro.engine import available_engines
from repro.exec import (
    DEFAULT_SHARD_SIZE,
    FileQueue,
    Shard,
    execute_scenario_sharded,
    plan_shards,
    read_heartbeats,
    reassemble_campaign,
    resolve_jobs,
    resolve_shard_size,
    run_worker,
    shard_key,
    shard_task,
)
from repro.exec.status import format_exec_status
from repro.exec.telemetry import WorkerTelemetry
from repro.study.runner import execute_scenarios
from repro.study.scenario import (
    HierarchySpec,
    Scenario,
    WorkloadSpec,
    scenario_from_spec,
)
from repro.study.store import ResultStore


def _scenario(runs: int = 12, master_seed: int = 77, engine: str = "fast") -> Scenario:
    """A small, fast synthetic-kernel scenario for pipeline tests."""
    return Scenario(
        workload=WorkloadSpec.synthetic(4 * 1024, 2),
        hierarchy=HierarchySpec(setup="rm", with_l2=False),
        runs=runs,
        master_seed=master_seed,
        engine=engine,
    )


def _serial_times(scenario: Scenario) -> list:
    """The reference serial execution times for ``scenario``."""
    campaign = run_campaign(
        scenario.workload.build_trace(),
        scenario.hierarchy.config(),
        runs=scenario.runs,
        master_seed=scenario.effective_seed,
        setup=scenario.display_label,
        engine=scenario.engine,
    )
    return campaign.execution_times


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------

class TestPlan:
    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-1)

    def test_resolve_shard_size_heuristic_caps(self):
        assert resolve_shard_size(10_000, 2) == DEFAULT_SHARD_SIZE
        assert resolve_shard_size(4, 8) == 1
        assert resolve_shard_size(100, 2, 7) == 7
        with pytest.raises(ValueError, match="shard_size"):
            resolve_shard_size(10, 2, 0)

    def test_plan_covers_runs_exactly_once_in_order(self):
        shards = plan_shards("abc", 23, 7)
        assert [s.start for s in shards] == [0, 7, 14, 21]
        assert [s.count for s in shards] == [7, 7, 7, 2]
        assert all(s.spec_hash == "abc" for s in shards)
        assert [s.index for s in shards] == [0, 1, 2, 3]
        assert all(s.total == 4 for s in shards)

    def test_plan_is_deterministic(self):
        assert plan_shards("h", 100, 9) == plan_shards("h", 100, 9)

    def test_shard_key_is_sortable_and_unambiguous(self):
        assert shard_key(0, 7) == "00000000x000007"
        keys = [s.key for s in plan_shards("h", 200, 16)]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)

    def test_plan_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="runs"):
            plan_shards("h", 0, 4)
        with pytest.raises(ValueError, match="shard_size"):
            plan_shards("h", 4, 0)


# ---------------------------------------------------------------------------
# Queue and leases
# ---------------------------------------------------------------------------

def _task(spec_hash: str = "deadbeef", start: int = 0, count: int = 4) -> dict:
    return {
        "spec_hash": spec_hash,
        "key": shard_key(start, count),
        "start": start,
        "count": count,
    }


class TestFileQueue:
    def test_enqueue_is_idempotent(self, tmp_path):
        queue = FileQueue(tmp_path / "q")
        queue.enqueue(_task())
        queue.enqueue(_task())
        assert queue.pending() == 1

    def test_tasks_sorted_for_deterministic_claim_order(self, tmp_path):
        queue = FileQueue(tmp_path / "q")
        for start in (8, 0, 4):
            queue.enqueue(_task(start=start))
        assert [queue.read_task(p)["start"] for p in queue.tasks()] == [0, 4, 8]

    def test_fresh_claim_is_exclusive(self, tmp_path):
        queue = FileQueue(tmp_path / "q")
        path = queue.enqueue(_task())
        assert queue.try_claim(path, "alice")
        assert not queue.try_claim(path, "bob")
        lease = queue.lease_for(path)
        assert lease.owner == "alice" and lease.active()

    def test_expired_lease_is_reclaimed(self, tmp_path):
        queue = FileQueue(tmp_path / "q")
        path = queue.enqueue(_task())
        assert queue.try_claim(path, "alice", ttl=0.0)
        # alice's lease deadline has passed; bob may take over.
        assert queue.try_claim(path, "bob")
        assert queue.lease_for(path).owner == "bob"

    def test_dead_pid_lease_is_reclaimed_without_waiting_out_ttl(self, tmp_path):
        queue = FileQueue(tmp_path / "q")
        path = queue.enqueue(_task())
        assert queue.try_claim(path, "ghost", ttl=3600.0)
        # Rewrite the lease as if it were held by a dead process on this
        # host: pid of a short-lived child that has already been reaped.
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        lease_path = queue.lease_path(path)
        payload = json.loads(lease_path.read_text())
        payload["pid"] = child.pid
        lease_path.write_text(json.dumps(payload))
        assert not queue.lease_for(path).active()
        assert queue.try_claim(path, "bob")

    def test_release_only_drops_own_lease(self, tmp_path):
        queue = FileQueue(tmp_path / "q")
        path = queue.enqueue(_task())
        queue.try_claim(path, "alice")
        queue.release(path, "bob")  # not bob's to release
        assert queue.lease_for(path).owner == "alice"
        queue.release(path, "alice")
        assert queue.lease_for(path) is None

    def test_complete_retires_task_and_lease(self, tmp_path):
        queue = FileQueue(tmp_path / "q")
        path = queue.enqueue(_task())
        queue.try_claim(path, "alice")
        queue.complete(path, "alice")
        assert queue.pending() == 0
        assert queue.lease_for(path) is None

    def test_counts_and_clear(self, tmp_path):
        queue = FileQueue(tmp_path / "q")
        first = queue.enqueue(_task(start=0))
        queue.enqueue(_task(start=4))
        queue.try_claim(first, "alice")
        assert queue.counts() == {"pending": 2, "leased": 1}
        assert queue.clear() == 3  # two tasks + one lease
        assert queue.counts() == {"pending": 0, "leased": 0}


# ---------------------------------------------------------------------------
# Spec round-trip (what makes shard tasks self-contained)
# ---------------------------------------------------------------------------

class TestSpecRoundTrip:
    def test_named_setup_round_trips_to_same_hash(self):
        scenario = Scenario(
            workload=WorkloadSpec.eembc("a2time", scale=0.25),
            hierarchy=HierarchySpec(setup="rm", with_l2=False),
            runs=23,
            master_seed=123,
            seed_offset=5,
        )
        rebuilt = scenario_from_spec(scenario.spec_dict())
        assert rebuilt.spec_hash() == scenario.spec_hash()
        assert rebuilt.effective_seed == scenario.effective_seed

    def test_custom_hierarchy_and_synthetic_workload_round_trip(self):
        scenario = Scenario(
            workload=WorkloadSpec.synthetic(4096, 3),
            hierarchy=HierarchySpec(
                setup="",
                l1_placement="modulo",
                l2_placement="random_modulo",
                l1_replacement="lru",
                l2_replacement="random",
            ),
            runs=5,
            master_seed=7,
        )
        rebuilt = scenario_from_spec(scenario.spec_dict())
        assert rebuilt.spec_hash() == scenario.spec_hash()

    def test_version_mismatch_is_rejected(self):
        spec = _scenario().spec_dict()
        spec["version"] = 999
        with pytest.raises(ValueError, match="version"):
            scenario_from_spec(spec)


# ---------------------------------------------------------------------------
# Store shard entries and GC
# ---------------------------------------------------------------------------

class TestStoreShardEntries:
    def test_save_load_keys_clear(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        payload = {"version": 1, "cycles": [1, 2, 3]}
        store.save_shard("aaa", shard_key(0, 3), payload)
        store.save_shard("bbb", shard_key(0, 3), payload)
        assert store.load_shard("aaa", shard_key(0, 3))["cycles"] == [1, 2, 3]
        assert store.load_shard("aaa", shard_key(3, 3)) is None
        assert store.shard_keys() == [
            ("aaa", shard_key(0, 3)),
            ("bbb", shard_key(0, 3)),
        ]
        assert store.shard_keys("aaa") == [("aaa", shard_key(0, 3))]
        assert store.clear_shards("aaa") == 1
        assert store.shard_keys() == [("bbb", shard_key(0, 3))]
        assert store.clear_shards() == 1

    def test_shard_entries_do_not_pollute_campaign_keys(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.save_shard("aaa", shard_key(0, 3), {"version": 1})
        assert store.keys() == []

    def test_corrupt_or_mismatched_shard_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        path = store.save_shard("aaa", shard_key(0, 3), {"version": 1})
        path.write_text("{truncated")
        assert store.load_shard("aaa", shard_key(0, 3)) is None
        store.save_shard("aaa", shard_key(0, 3), {"version": 999})
        assert store.load_shard("aaa", shard_key(0, 3)) is None

    def test_sweep_age_based(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.save_analysis("aaa", "cfg", {"v": 1})
        store.save_shard("aaa", shard_key(0, 3), {"version": 1})
        # Nothing is old enough yet.
        assert store.sweep(older_than=3600.0) == 0
        # Age the analysis file only.
        old = time.time() - 7200
        analysis_path = store.analysis_path_for("aaa", "cfg")
        os.utime(analysis_path, (old, old))
        assert store.sweep(older_than=3600.0) == 1
        assert store.load_analysis("aaa", "cfg") is None
        assert store.load_shard("aaa", shard_key(0, 3)) is not None

    def test_sweep_analyses_only_leaves_shards_and_queue(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.save_analysis("aaa", "cfg", {"v": 1})
        store.save_shard("aaa", shard_key(0, 3), {"version": 1})
        queue = FileQueue(store.queue_root)
        queue.enqueue(_task("aaa"))
        old = time.time() - 7200
        for root in (store.analysis_root, store.shard_root, queue.task_root):
            for path in root.iterdir():
                os.utime(path, (old, old))
        assert store.sweep(older_than=3600.0, analyses_only=True) == 1
        assert store.load_shard("aaa", shard_key(0, 3)) is not None
        assert queue.pending() == 1
        # The full sweep also collects shard and queue leftovers.
        assert store.sweep(older_than=3600.0) == 2
        assert store.shard_keys() == []
        assert queue.pending() == 0

    def test_clear_includes_shards_and_queue(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.save_shard("aaa", shard_key(0, 3), {"version": 1})
        FileQueue(store.queue_root).enqueue(_task("aaa"))
        store.clear()
        assert store.shard_keys() == []
        assert FileQueue(store.queue_root).pending() == 0


# ---------------------------------------------------------------------------
# Sharded execution pipeline
# ---------------------------------------------------------------------------

class TestShardedExecution:
    def test_single_worker_matches_serial(self, tmp_path):
        scenario = _scenario()
        store = ResultStore(tmp_path / "store")
        campaign, miss, report = execute_scenario_sharded(
            scenario, store, jobs=1, shard_size=5
        )
        assert campaign.execution_times == _serial_times(scenario)
        assert campaign.master_seed == scenario.effective_seed
        assert campaign.setup == scenario.display_label
        assert (report.planned, report.reused, report.executed) == (3, 0, 3)
        assert miss["memory_accesses"] > 0

    def test_multiprocess_workers_match_serial(self, tmp_path):
        scenario = _scenario(runs=14)
        store = ResultStore(tmp_path / "store")
        campaign, _, report = execute_scenario_sharded(
            scenario, store, jobs=2, shard_size=3
        )
        assert campaign.execution_times == _serial_times(scenario)
        assert report.executed == report.planned == 5

    def test_miss_summary_matches_in_memory_path(self, tmp_path):
        # The reassembled miss summary must be float-for-float identical to
        # CampaignResult.miss_summary() on the in-memory run results.
        scenario = _scenario()
        store = ResultStore(tmp_path / "store")
        _, sharded_miss, _ = execute_scenario_sharded(
            scenario, store, jobs=1, shard_size=4
        )
        campaign = run_campaign(
            scenario.workload.build_trace(),
            scenario.hierarchy.config(),
            runs=scenario.runs,
            master_seed=scenario.effective_seed,
            engine=scenario.engine,
            keep_run_results=True,
        )
        assert sharded_miss == campaign.miss_summary()

    def test_resume_reuses_published_shards(self, tmp_path):
        scenario = _scenario()
        store = ResultStore(tmp_path / "store")
        execute_scenario_sharded(scenario, store, jobs=1, shard_size=4, resume=True)
        _, _, report = execute_scenario_sharded(
            scenario, store, jobs=1, shard_size=4, resume=True
        )
        assert report.executed == 0
        assert report.reused == report.planned

    def test_without_resume_partials_are_dropped(self, tmp_path):
        scenario = _scenario()
        store = ResultStore(tmp_path / "store")
        execute_scenario_sharded(scenario, store, jobs=1, shard_size=4, resume=True)
        _, _, report = execute_scenario_sharded(scenario, store, jobs=1, shard_size=4)
        assert report.executed == report.planned

    def test_layout_campaigns_are_rejected(self, tmp_path):
        scenario = Scenario(
            workload=WorkloadSpec.eembc("a2time", scale=0.1),
            hierarchy=HierarchySpec(setup="modulo", with_l2=False),
            runs=5,
            campaign="layouts",
        )
        with pytest.raises(ValueError, match="layout"):
            execute_scenario_sharded(scenario, ResultStore(tmp_path / "s"))

    def test_reassemble_names_missing_shards(self, tmp_path):
        scenario = _scenario()
        store = ResultStore(tmp_path / "store")
        shards = plan_shards(scenario.spec_hash(), scenario.runs, 4)
        with pytest.raises(RuntimeError, match=shards[0].key):
            reassemble_campaign(scenario, shards, store)

    def test_worker_heartbeats_recorded(self, tmp_path):
        scenario = _scenario()
        store = ResultStore(tmp_path / "store")
        execute_scenario_sharded(scenario, store, jobs=1, shard_size=4)
        beats = read_heartbeats(FileQueue(store.queue_root))
        assert len(beats) == 1
        assert beats[0].finished
        assert beats[0].shards_done == 3
        assert beats[0].runs_done == scenario.runs

    def test_exec_status_renders_queue_and_workers(self, tmp_path):
        scenario = _scenario()
        store = ResultStore(tmp_path / "store")
        execute_scenario_sharded(scenario, store, jobs=1, shard_size=4, resume=True)
        text = format_exec_status(store)
        assert "finished" in text
        assert "runs/s" in text

    @pytest.mark.parametrize("shard_size", [1, 7, None])
    def test_shard_size_invariance(self, tmp_path, shard_size):
        # shard_size=None exercises the planner heuristic; ISSUE requires
        # 1, 7 and runs-sized shards to reassemble identically (runs=12
        # with size 7 yields an uneven [7, 5] split).
        scenario = _scenario()
        store = ResultStore(tmp_path / "store")
        campaign, _, _ = execute_scenario_sharded(
            scenario, store, jobs=1, shard_size=shard_size
        )
        assert campaign.execution_times == _serial_times(scenario)

    def test_whole_campaign_shard_matches_serial(self, tmp_path):
        scenario = _scenario()
        store = ResultStore(tmp_path / "store")
        campaign, _, report = execute_scenario_sharded(
            scenario, store, jobs=1, shard_size=scenario.runs
        )
        assert report.planned == 1
        assert campaign.execution_times == _serial_times(scenario)


class TestShardedExecutionProperty:
    """Hypothesis: any (engine, shard size, worker count) is bit-exact."""

    @given(
        engine=st.sampled_from(sorted(available_engines())),
        shard_size=st.integers(min_value=1, max_value=10),
        jobs=st.sampled_from([1, 2]),
    )
    @hyp_settings(max_examples=8, deadline=None)
    def test_bit_exact_for_any_partition(self, tmp_path_factory, engine, shard_size, jobs):
        scenario = _scenario(runs=10, master_seed=31, engine=engine)
        store = ResultStore(tmp_path_factory.mktemp("store"))
        campaign, _, _ = execute_scenario_sharded(
            scenario, store, jobs=jobs, shard_size=shard_size
        )
        assert campaign.execution_times == _serial_times(scenario)


# ---------------------------------------------------------------------------
# Crash-resume: SIGKILL an external worker mid-shard
# ---------------------------------------------------------------------------

class TestCrashResume:
    def _enqueue_all(self, scenario, store, shard_size):
        shards = plan_shards(scenario.spec_hash(), scenario.runs, shard_size)
        queue = FileQueue(store.queue_root)
        for shard in shards:
            queue.enqueue(shard_task(scenario, shard, scenario.engine))
        return shards, queue

    def test_sigkilled_worker_leaves_resumable_state(self, tmp_path):
        scenario = _scenario()
        store = ResultStore(tmp_path / "store")
        shards, queue = self._enqueue_all(scenario, store, shard_size=4)

        # External worker, throttled so the kill lands between claiming the
        # first shard and executing it (deterministic kill-mid-shard).
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_EXEC_THROTTLE"] = "30"
        worker = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--store", str(store.root)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 30
            lease_paths = [queue.lease_path(p) for p in queue.tasks()]
            while time.time() < deadline:
                if any(p.exists() for p in lease_paths):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("worker never claimed a shard")
        finally:
            worker.send_signal(signal.SIGKILL)
            worker.wait()

        # Killed mid-shard: nothing published, the claimed task still
        # pending, its lease held by a now-dead pid.
        assert store.shard_keys(scenario.spec_hash()) == []
        assert queue.pending() == len(shards)
        held = [p for p in queue.tasks() if queue.lease_for(p) is not None]
        assert held
        assert not queue.lease_for(held[0]).active()  # dead-pid detection

        # Resume in-process: the dead lease is reclaimed immediately (no
        # TTL wait) and the reassembled campaign is bit-exact with serial.
        stats = run_worker(queue.root, store.root, lease_ttl=3600.0)
        assert stats.shards_done == len(shards)
        campaign, _ = reassemble_campaign(scenario, shards, store)
        assert campaign.execution_times == _serial_times(scenario)

    def test_executor_waits_out_live_foreign_lease(self, tmp_path):
        # A shard leased by a live foreign owner (an attached worker, or an
        # orphaned pool worker of a killed coordinator) must not be stolen:
        # the executor waits until the lease dies, then reclaims and
        # executes the shard itself instead of failing reassembly.
        scenario = _scenario()
        store = ResultStore(tmp_path / "store")
        queue = FileQueue(store.queue_root)
        shards = plan_shards(scenario.spec_hash(), scenario.runs, 4)
        path = queue.enqueue(shard_task(scenario, shards[0], scenario.engine))
        # Live pid (this process), short deadline: active for ~1 second.
        assert queue.try_claim(path, "foreign-worker", ttl=1.0)
        campaign, _, report = execute_scenario_sharded(
            scenario, store, jobs=1, shard_size=4, resume=True
        )
        assert report.executed == report.planned == len(shards)
        assert campaign.execution_times == _serial_times(scenario)

    def test_study_resume_executes_only_missing_shards(self, tmp_path):
        scenario = _scenario()
        store = ResultStore(tmp_path / "store")
        shards, queue = self._enqueue_all(scenario, store, shard_size=3)

        # "Killed" first attempt: the worker exits after two of four shards.
        stats = run_worker(queue.root, store.root, max_shards=2)
        assert stats.shards_done == 2
        assert len(store.shard_keys(scenario.spec_hash())) == 2

        # Rerun through the study runner with --resume semantics.
        results = execute_scenarios(
            [scenario], store=store, shard_size=3, resume=True
        )
        assert results.report.shards_planned == 4
        assert results.report.shards_reused == 2
        assert results.report.shards_executed == 2
        outcome = next(iter(results))
        assert outcome.campaign.execution_times == _serial_times(scenario)
        # The final campaign entry supersedes its shards.
        assert store.shard_keys(scenario.spec_hash()) == []
        assert store.load(scenario.spec_hash()) is not None
        # A second resume is a pure store hit: nothing planned or executed.
        again = execute_scenarios([scenario], store=store, shard_size=3, resume=True)
        assert again.report.full_cache_hit
        assert again.report.shards_planned == 0
        assert (
            next(iter(again)).campaign.execution_times
            == outcome.campaign.execution_times
        )


# ---------------------------------------------------------------------------
# Runner/CLI integration details
# ---------------------------------------------------------------------------

class TestRunnerIntegration:
    def test_shard_size_requires_store(self):
        with pytest.raises(ValueError, match="store"):
            execute_scenarios([_scenario()], store=None, shard_size=4)

    def test_report_summary_mentions_shards_only_when_sharded(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        sharded = execute_scenarios([_scenario()], store=store, shard_size=4)
        assert "shards" in sharded.report.summary()
        plain = execute_scenarios([_scenario(master_seed=99)], store=store)
        assert "shards" not in plain.report.summary()

    def test_telemetry_rate_limit_always_writes_transitions(self, tmp_path):
        queue = FileQueue(tmp_path / "q")
        telemetry = WorkerTelemetry(queue, "owner-1", interval=3600.0)
        telemetry.beat()  # rate-limited: no state change recorded
        telemetry.claimed()
        telemetry.published(runs=5)
        telemetry.finish()
        (beat,) = read_heartbeats(queue)
        assert beat.shards_claimed == 1
        assert beat.shards_done == 1
        assert beat.runs_done == 5
        assert beat.finished
