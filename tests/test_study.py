"""Tests for the declarative scenario/study subsystem (``repro.study``).

Covers Sweep expansion, spec-hash stability, the on-disk result store's
hit/miss behaviour, batched execution equivalence, the ResultSet views, the
``python -m repro study`` CLI surface, and — via the golden files in
``tests/golden/`` — byte-identical equivalence of every legacy
``experiment_*`` driver with its study reimplementation.

Regenerate the goldens (only when an output change is intended) with::

    PYTHONPATH=src python tests/golden/generate.py
"""

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.analysis.campaign import run_campaign
from repro.analysis.experiments import ExperimentSettings
from repro.mbpta.protocol import MbptaConfig
from repro.study import (
    HierarchySpec,
    ResultStore,
    Scenario,
    Study,
    Sweep,
    WorkloadSpec,
    available_studies,
    execute_scenarios,
    get_study,
    register_study,
    run_study,
    unregister_study,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: The settings the goldens were generated with (tests/golden/generate.py).
GOLDEN_SETTINGS = ExperimentSettings(runs=40, scale=0.25)


def tiny_scenario(**overrides) -> Scenario:
    """A fast synthetic scenario (~small trace, 24 runs)."""
    defaults = dict(
        workload=WorkloadSpec.synthetic(4 * 1024, iterations=2),
        hierarchy=HierarchySpec.named("rm"),
        runs=24,
        master_seed=99,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


# ---------------------------------------------------------------------------
# Sweep expansion
# ---------------------------------------------------------------------------

class TestSweep:
    def test_plain_value_axis_expands_in_order(self):
        sweep = Sweep(base=tiny_scenario(), axes={"runs": [24, 32, 48]})
        assert [s.runs for s in sweep.scenarios()] == [24, 32, 48]

    def test_product_first_axis_varies_slowest(self):
        sweep = Sweep(
            base=tiny_scenario(),
            axes={
                "hierarchy": [HierarchySpec.named("rm"), HierarchySpec.named("hrp")],
                "runs": [24, 32],
            },
        )
        expanded = sweep.scenarios()
        assert [(s.hierarchy.setup, s.runs) for s in expanded] == [
            ("rm", 24), ("rm", 32), ("hrp", 24), ("hrp", 32),
        ]

    def test_mapping_values_override_several_fields(self):
        sweep = Sweep(
            base=tiny_scenario(),
            axes={
                "point": [
                    {"runs": 32, "label": "small"},
                    {"runs": 48, "label": "large"},
                ]
            },
        )
        expanded = sweep.scenarios()
        assert [(s.runs, s.label) for s in expanded] == [(32, "small"), (48, "large")]

    def test_seed_offsets_add_across_axes(self):
        sweep = Sweep(
            base=tiny_scenario(seed_offset=5),
            axes={
                "a": [{"seed_offset": 0}, {"seed_offset": 1}],
                "b": [{"seed_offset": 0}, {"seed_offset": 1000}],
            },
        )
        assert [s.seed_offset for s in sweep.scenarios()] == [5, 1005, 6, 1006]

    def test_conflicting_field_overrides_rejected(self):
        sweep = Sweep(
            base=tiny_scenario(),
            axes={"a": [{"runs": 32}], "b": [{"runs": 48}]},
        )
        with pytest.raises(ValueError, match="conflict.*runs"):
            sweep.scenarios()

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            Sweep(base=tiny_scenario(), axes={"runs": []}).scenarios()


# ---------------------------------------------------------------------------
# Scenario validation and spec hashing
# ---------------------------------------------------------------------------

class TestScenarioSpec:
    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(kind="quantum")
        with pytest.raises(ValueError):
            WorkloadSpec.synthetic(0, iterations=2)
        with pytest.raises(ValueError):
            tiny_scenario(runs=0)
        with pytest.raises(ValueError):
            tiny_scenario(campaign="moonphase")
        with pytest.raises(ValueError):  # synthetic workloads have no layouts
            tiny_scenario(campaign="layouts")

    def test_hash_is_stable(self):
        # Pinned literal: changing the canonical spec layout breaks every
        # stored result, so it must be a deliberate SPEC_VERSION bump.
        assert tiny_scenario().spec_hash() == (
            "e1dc49841308ef04038a1c9cc76f1b43d793dd550a9e160b7aca4d74c3bd6093"
        )

    def test_execution_knobs_do_not_change_the_hash(self):
        base = tiny_scenario()
        assert base.spec_hash() == tiny_scenario(engine="numpy").spec_hash()
        assert base.spec_hash() == tiny_scenario(jobs=4).spec_hash()
        assert base.spec_hash() == tiny_scenario(label="renamed").spec_hash()
        assert base.spec_hash() == tiny_scenario(
            mbpta=MbptaConfig(block_size=10)
        ).spec_hash()

    def test_simulation_fields_change_the_hash(self):
        base = tiny_scenario()
        assert base.spec_hash() != tiny_scenario(runs=25).spec_hash()
        assert base.spec_hash() != tiny_scenario(master_seed=100).spec_hash()
        assert base.spec_hash() != tiny_scenario(
            hierarchy=HierarchySpec.named("hrp")
        ).spec_hash()
        assert base.spec_hash() != tiny_scenario(
            workload=WorkloadSpec.synthetic(8 * 1024, iterations=2)
        ).spec_hash()

    def test_offset_and_base_seed_hash_identically(self):
        # Only the effective seed matters, not how it is split.
        assert (
            tiny_scenario(master_seed=90, seed_offset=9).spec_hash()
            == tiny_scenario(master_seed=99).spec_hash()
        )

    def test_display_label_defaults_to_workload_and_hierarchy(self):
        assert tiny_scenario().display_label == "synthetic_4KB/rm"
        assert tiny_scenario(label="mine").display_label == "mine"

    def test_sub_kb_footprints_get_distinct_labels(self):
        # Floor-dividing to KB must not make distinct footprints collide.
        assert WorkloadSpec.synthetic(1024, iterations=2).label == "synthetic_1KB"
        assert WorkloadSpec.synthetic(1536, iterations=2).label == "synthetic_1536B"


# ---------------------------------------------------------------------------
# Result store
# ---------------------------------------------------------------------------

class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenario = tiny_scenario()
        results = execute_scenarios([scenario], store=store)
        assert len(store) == 1
        stored = store.load(scenario.spec_hash())
        assert stored is not None
        assert stored.execution_times == results.campaign(
            scenario.display_label
        ).execution_times
        assert stored.miss_summary["il1_miss_rate"] >= 0.0

    def test_corrupt_entries_are_cache_misses(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenario = tiny_scenario()
        execute_scenarios([scenario], store=store)
        store.path_for(scenario.spec_hash()).write_text("{not json")
        assert store.load(scenario.spec_hash()) is None
        # ... and the runner transparently re-simulates and heals the entry.
        results = execute_scenarios([scenario], store=store)
        assert results.report.cache_hits == 0
        assert store.load(scenario.spec_hash()) is not None

    def test_clear_removes_entries(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        execute_scenarios([tiny_scenario()], store=store)
        assert store.clear() == 1
        assert store.keys() == []
        assert store.clear() == 0  # idempotent, even without the directory


# ---------------------------------------------------------------------------
# Execution: caching, deduplication, batching
# ---------------------------------------------------------------------------

class TestExecution:
    def test_second_execution_is_a_full_cache_hit(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenarios = [
            tiny_scenario(),
            tiny_scenario(hierarchy=HierarchySpec.named("hrp")),
        ]
        first = execute_scenarios(scenarios, store=store)
        assert first.report.simulated == 2 and not first.report.full_cache_hit
        second = execute_scenarios(scenarios, store=store)
        assert second.report.full_cache_hit
        assert "full cache hit" in second.report.summary()
        for label in first.labels():
            assert (
                first.campaign(label).execution_times
                == second.campaign(label).execution_times
            )
            assert second[label].from_cache

    def test_use_cache_false_forces_resimulation(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        execute_scenarios([tiny_scenario()], store=store)
        refreshed = execute_scenarios([tiny_scenario()], store=store, use_cache=False)
        assert refreshed.report.cache_hits == 0
        assert refreshed.report.simulated == 1

    def test_identical_specs_are_deduplicated(self):
        scenarios = [tiny_scenario(label="a"), tiny_scenario(label="b")]
        results = execute_scenarios(scenarios)
        assert len(results) == 2  # both labels present in the result set
        assert results.report.planned == 1  # ... but one unit of work
        assert results.report.simulated == 1
        assert (
            results.campaign("a").execution_times
            == results.campaign("b").execution_times
        )

    def test_warm_rerun_with_duplicates_is_a_full_cache_hit(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenarios = [tiny_scenario(label="a"), tiny_scenario(label="b")]
        execute_scenarios(scenarios, store=store)
        warm = execute_scenarios(scenarios, store=store)
        assert warm.report.full_cache_hit
        assert warm.report.simulated == 0

    def test_batched_execution_matches_run_campaign(self):
        # Three scenarios share (workload, hierarchy, engine): the runner
        # concatenates their seed lists into one engine batch.  The result
        # must be bit-exact with one run_campaign call per scenario.
        scenarios = [
            tiny_scenario(master_seed=7, label="a"),
            tiny_scenario(master_seed=1234, runs=30, label="b"),
            tiny_scenario(master_seed=7, seed_offset=500, label="c"),
        ]
        results = execute_scenarios(scenarios)
        assert results.report.batches == 1
        trace = scenarios[0].workload.build_trace()
        for scenario in scenarios:
            expected = run_campaign(
                trace,
                scenario.hierarchy.config(),
                runs=scenario.runs,
                master_seed=scenario.effective_seed,
            )
            got = results.campaign(scenario.label)
            assert got.execution_times == expected.execution_times

    def test_unknown_engine_fails_before_any_simulation(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(ValueError, match="unknown engine"):
            execute_scenarios([tiny_scenario(engine="warp")], store=store)
        assert len(store) == 0


# ---------------------------------------------------------------------------
# ResultSet views
# ---------------------------------------------------------------------------

class TestResultSet:
    @pytest.fixture(scope="class")
    def results(self):
        return execute_scenarios(
            [
                tiny_scenario(label="rm"),
                tiny_scenario(hierarchy=HierarchySpec.named("hrp"), label="hrp"),
            ]
        )

    def test_table_lists_every_scenario(self, results):
        table = results.table(cutoffs=(1e-12,), title="tiny sweep")
        assert "tiny sweep" in table
        assert "rm" in table and "hrp" in table
        assert "pWCET@1e-12" in table
        assert "simulated" in table

    def test_ccdf_is_monotonic(self, results):
        points = results.ccdf("rm")
        probabilities = [probability for _, probability in points]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_compare_reports_shared_labels(self, results):
        comparison = results.compare(results)
        assert "rm" in comparison and "B/A" in comparison
        assert "1.000" in comparison  # self-comparison: all ratios are 1

    def test_compare_without_overlap_degrades_gracefully(self, results):
        other = execute_scenarios([tiny_scenario(label="other")])
        assert "no overlapping scenario labels" in results.compare(other)

    def test_miss_rates_per_scenario(self, results):
        rates = results.miss_rates()
        assert set(rates) == {"rm", "hrp"}
        for summary in rates.values():
            assert 0.0 <= summary["il1_miss_rate"] <= 1.0
            assert summary["memory_accesses"] > 0

    def test_unknown_label_raises_with_known_labels(self, results):
        with pytest.raises(KeyError, match="known labels"):
            results.campaign("nope")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate scenario label"):
            execute_scenarios([tiny_scenario(), tiny_scenario(runs=25)])


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

class TestStudyRegistry:
    def test_builtin_studies_registered(self):
        assert set(available_studies()) >= {
            "table1", "table2", "fig1", "fig4a", "fig4b",
            "fig5", "avg_perf", "ablation_seg", "ablation_repl",
        }

    def test_unknown_study_lists_registered_names(self):
        with pytest.raises(ValueError, match="registered studies"):
            get_study("fig9")

    def test_register_and_run_a_custom_study(self, tmp_path):
        study = Study(
            name="tiny_custom",
            description="one tiny scenario",
            planner=lambda settings: [tiny_scenario()],
            builder=lambda context: context.results.table(),
            min_runs=1,
        )
        try:
            register_study(study)
            with pytest.raises(ValueError, match="already registered"):
                register_study(study)
            outcome = run_study(
                "tiny_custom",
                ExperimentSettings(runs=24),
                store=ResultStore(tmp_path / "store"),
            )
            assert "synthetic_4KB/rm" in outcome.result
            assert outcome.report.simulated == 1
        finally:
            unregister_study("tiny_custom")


# ---------------------------------------------------------------------------
# Legacy driver equivalence (byte-identical --format text output)
# ---------------------------------------------------------------------------

def _golden(identifier: str) -> str:
    return (GOLDEN_DIR / f"{identifier}.txt").read_text()


class TestDriverEquivalence:
    """Each legacy driver, now a study, renders byte-identical text."""

    def test_table1(self):
        from repro.analysis.experiments import experiment_table1

        assert experiment_table1().format() + "\n" == _golden("table1")

    def test_fig1(self):
        from repro.analysis.experiments import experiment_fig1

        result = experiment_fig1(GOLDEN_SETTINGS, benchmark="a2time")
        assert result.format() + "\n" == _golden("fig1")

    def test_fig5(self):
        from repro.analysis.experiments import experiment_fig5

        result = experiment_fig5(
            GOLDEN_SETTINGS, footprint_bytes=20 * 1024, iterations=3
        )
        assert result.format() + "\n" == _golden("fig5")

    def test_ablation_seg(self):
        from repro.analysis.experiments import experiment_footprint_ablation

        result = experiment_footprint_ablation(
            ExperimentSettings(runs=30), footprints=(4 * 1024, 20 * 1024), iterations=2
        )
        assert result.format() + "\n" == _golden("ablation_seg")

    def test_ablation_repl(self):
        from repro.analysis.experiments import experiment_replacement_ablation

        result = experiment_replacement_ablation(ExperimentSettings(runs=25, scale=0.25))
        assert result.format() + "\n" == _golden("ablation_repl")

    @pytest.mark.parametrize(
        "estimator, golden_id",
        [
            ("gumbel-mle", "fig5_gumbel_mle"),
            ("exponential-excess", "fig5_exponential_excess"),
        ],
    )
    def test_fig5_per_estimator_baselines(self, estimator, golden_id):
        # The non-default estimators are pinned as tightly as gumbel-pwm:
        # the same fig5 campaigns projected through each one must render
        # byte-identically to its golden.
        from dataclasses import replace

        from repro.analysis.experiments import experiment_fig5

        result = experiment_fig5(
            replace(GOLDEN_SETTINGS, estimator=estimator),
            footprint_bytes=20 * 1024,
            iterations=3,
        )
        assert result.format() + "\n" == _golden(golden_id)

    def test_ablation_seg_accepts_same_kb_bucket_footprints(self):
        # Regression: 1024 and 1536 bytes both floor to "1KB"; the labels
        # must still be distinct for the study to execute.
        from repro.analysis.experiments import experiment_footprint_ablation

        result = experiment_footprint_ablation(
            ExperimentSettings(runs=20), footprints=(1024, 1536), iterations=2
        )
        assert len(result.rows) == 2

    def test_study_path_with_store_is_also_byte_identical(self, tmp_path):
        # The cached path must render the same bytes as the simulating path.
        store = ResultStore(tmp_path / "store")
        settings = GOLDEN_SETTINGS
        first = run_study(
            "fig5", settings, store=store, footprint_bytes=20 * 1024, iterations=3
        )
        second = run_study(
            "fig5", settings, store=store, footprint_bytes=20 * 1024, iterations=3
        )
        assert second.report.full_cache_hit
        assert first.result.format() == second.result.format()
        assert first.result.format() + "\n" == _golden("fig5")


@pytest.mark.slow
class TestDriverEquivalenceFullSuite:
    """The 11-benchmark sweeps, at the goldens' reduced scale."""

    def test_table2(self):
        from repro.analysis.experiments import experiment_table2

        assert experiment_table2(GOLDEN_SETTINGS).format() + "\n" == _golden("table2")

    def test_fig4a(self):
        from repro.analysis.experiments import experiment_fig4a

        assert experiment_fig4a(GOLDEN_SETTINGS).format() + "\n" == _golden("fig4a")

    def test_fig4b(self):
        from repro.analysis.experiments import experiment_fig4b

        assert experiment_fig4b(GOLDEN_SETTINGS).format() + "\n" == _golden("fig4b")

    def test_avg_perf(self):
        from repro.analysis.experiments import experiment_avg_performance

        result = experiment_avg_performance(GOLDEN_SETTINGS)
        assert result.format() + "\n" == _golden("avg_perf")


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestStudyCli:
    def test_study_list(self, capsys):
        assert main(["study", "list"]) == 0
        output = capsys.readouterr().out
        for name in ("table1", "fig5", "ablation_repl"):
            assert name in output

    def test_study_run_reports_full_cache_hit_on_repeat(self, tmp_path, capsys):
        argv = [
            "study", "run", "fig5",
            "--runs", "24", "--store", str(tmp_path / "store"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "new results stored" in first and "pWCET" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "resolved 2/2 scenarios from the result store (full cache hit)" in second
        # Identical rendered tables from cache and simulation.
        assert [l for l in first.splitlines() if "|" in l] == [
            l for l in second.splitlines() if "|" in l
        ]

    def test_study_run_no_cache_resimulates(self, tmp_path, capsys):
        argv = [
            "study", "run", "fig5",
            "--runs", "24", "--store", str(tmp_path / "store"),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--no-cache"]) == 0
        assert "full cache hit" not in capsys.readouterr().out

    def test_study_clean(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["study", "run", "fig5", "--runs", "24", "--store", store]) == 0
        capsys.readouterr()
        assert main(["study", "clean", "--store", store]) == 0
        # fig5 stores 2 campaigns plus the 2 pWCET analyses derived from them.
        assert "removed 4 stored result(s)" in capsys.readouterr().out
        assert ResultStore(store).keys() == []
        assert ResultStore(store).analysis_keys() == []

    def test_study_compare_self_is_identity(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main([
            "study", "compare", "fig5", "fig5", "--runs", "24", "--store", store,
        ]) == 0
        output = capsys.readouterr().out
        assert "study compare: A = fig5, B = fig5" in output
        assert "1.000" in output

    def test_runs_below_mbpta_minimum_is_one_line_error(self, capsys):
        for argv in (
            ["run", "fig5", "--runs", "8"],
            ["study", "run", "fig5", "--runs", "8"],
        ):
            assert main(argv) == 2
            captured = capsys.readouterr()
            assert captured.out == ""
            [line] = captured.err.splitlines()
            assert "at least 20 measurement runs" in line and "fig5" in line

    def test_runs_floor_ignores_non_mbpta_experiments(self, capsys):
        assert main(["run", "table1", "--runs", "8"]) == 0
        assert "Table 1" in capsys.readouterr().out


class TestMissRateEnrichment:
    def test_json_round_trips_with_miss_rates(self, tmp_path, capsys):
        argv = [
            "study", "run", "fig5", "--runs", "24",
            "--store", str(tmp_path / "store"), "--format", "json",
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "fig5"
        assert set(payload["miss_rates"]) == {"rm", "hrp"}
        for summary in payload["miss_rates"].values():
            for key in ("il1_miss_rate", "dl1_miss_rate", "l2_miss_rate",
                        "memory_accesses"):
                assert key in summary
        # A cache hit must serve the same enriched payload.
        assert main(argv) == 0
        assert json.loads(capsys.readouterr().out) == payload

    def test_csv_includes_miss_rate_rows(self, tmp_path, capsys):
        argv = [
            "study", "run", "fig5", "--runs", "24",
            "--store", str(tmp_path / "store"), "--format", "csv",
        ]
        assert main(argv) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "experiment,key,value"
        assert any(line.startswith("fig5,miss_rates.rm.il1_miss_rate,") for line in lines)

    def test_legacy_run_json_also_enriched(self, capsys):
        assert main(["run", "fig1", "--runs", "24", "--scale", "0.25",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "a2time/rm" in payload["miss_rates"]
