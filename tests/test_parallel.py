"""Parallel campaigns must be bit-exact with the serial execution path."""

import pytest

from repro.analysis import parallel
from repro.analysis.campaign import CampaignResult, run_campaign, run_layout_campaign
from repro.analysis.parallel import (
    DEFAULT_CHUNK_SIZE,
    partition_chunks,
    resolve_jobs,
    run_campaign_parallel,
)
from repro.cache.fastsim import CompiledTrace
from repro.engine import FastEngine, available_engines, register_engine, unregister_engine
from repro.platform.leon3 import platform_setup
from repro.workloads.base import random_layouts
from repro.workloads.eembc import EembcLayoutTraceBuilder


class RenamedFastEngine(FastEngine):
    """Module-level (hence picklable) custom engine for registry tests."""

    name = "test-custom-fast"


class TestResolveJobs:
    def test_explicit_value_taken_literally(self):
        assert resolve_jobs(3) == 3

    def test_none_and_zero_mean_all_cpus(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-1)


class TestPartitionChunks:
    def test_chunks_cover_items_in_order(self):
        items = list(range(100))
        chunks = partition_chunks(items, jobs=4)
        flattened = []
        for start, chunk in chunks:
            assert start == len(flattened)
            flattened.extend(chunk)
        assert flattened == items

    def test_explicit_chunk_size(self):
        chunks = partition_chunks(list(range(10)), jobs=2, chunk_size=3)
        assert [len(chunk) for _, chunk in chunks] == [3, 3, 3, 1]

    def test_chunk_size_capped(self):
        chunks = partition_chunks(list(range(10_000)), jobs=2)
        assert max(len(chunk) for _, chunk in chunks) <= DEFAULT_CHUNK_SIZE

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            partition_chunks([1, 2, 3], jobs=2, chunk_size=0)


class TestParallelSeedCampaign:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_bit_exact_with_serial(self, jobs, small_kernel_trace, tiny_hierarchy_config):
        serial = run_campaign(
            small_kernel_trace, tiny_hierarchy_config, runs=16, master_seed=11
        )
        parallel = run_campaign(
            small_kernel_trace, tiny_hierarchy_config, runs=16, master_seed=11, jobs=jobs
        )
        assert parallel.execution_times == serial.execution_times
        assert parallel.workload == serial.workload
        assert parallel.setup == serial.setup
        assert parallel.master_seed == serial.master_seed

    def test_bit_exact_across_chunk_sizes(self, small_kernel_trace, tiny_hierarchy_config):
        serial = run_campaign(
            small_kernel_trace, tiny_hierarchy_config, runs=10, master_seed=2
        )
        for chunk_size in (1, 3, 10):
            parallel = run_campaign(
                small_kernel_trace,
                tiny_hierarchy_config,
                runs=10,
                master_seed=2,
                jobs=2,
                chunk_size=chunk_size,
            )
            assert parallel.execution_times == serial.execution_times

    def test_keep_run_results_matches_serial(self, small_kernel_trace, tiny_hierarchy_config):
        serial = run_campaign(
            small_kernel_trace,
            tiny_hierarchy_config,
            runs=6,
            master_seed=4,
            keep_run_results=True,
        )
        parallel = run_campaign(
            small_kernel_trace,
            tiny_hierarchy_config,
            runs=6,
            master_seed=4,
            keep_run_results=True,
            jobs=2,
        )
        assert [r.as_dict() for r in parallel.run_results] == [
            r.as_dict() for r in serial.run_results
        ]

    def test_more_jobs_than_runs(self, small_kernel_trace, tiny_hierarchy_config):
        serial = run_campaign(
            small_kernel_trace, tiny_hierarchy_config, runs=3, master_seed=8
        )
        parallel = run_campaign(
            small_kernel_trace, tiny_hierarchy_config, runs=3, master_seed=8, jobs=4
        )
        assert parallel.execution_times == serial.execution_times

    def test_workers_select_engine_by_registry_name(
        self, small_kernel_trace, tiny_hierarchy_config
    ):
        """Any registered engine composes with the process pool, bit-exactly."""
        serial = run_campaign(
            small_kernel_trace, tiny_hierarchy_config, runs=6, master_seed=5
        )
        for engine in available_engines():
            parallel = run_campaign_parallel(
                small_kernel_trace,
                tiny_hierarchy_config,
                runs=6,
                master_seed=5,
                engine=engine,
                jobs=2,
            )
            assert parallel.execution_times == serial.execution_times, engine

    def test_unknown_engine_rejected_in_parent(
        self, small_kernel_trace, tiny_hierarchy_config
    ):
        with pytest.raises(ValueError, match="unknown engine"):
            run_campaign_parallel(
                small_kernel_trace,
                tiny_hierarchy_config,
                runs=4,
                engine="warp",
                jobs=2,
            )

    def test_user_registered_engine_composes_with_pool(
        self, small_kernel_trace, tiny_hierarchy_config
    ):
        """Engines registered at runtime work through jobs>1 too."""
        serial = run_campaign(
            small_kernel_trace, tiny_hierarchy_config, runs=6, master_seed=21
        )
        register_engine(RenamedFastEngine())
        try:
            parallel_custom = run_campaign_parallel(
                small_kernel_trace,
                tiny_hierarchy_config,
                runs=6,
                master_seed=21,
                engine="test-custom-fast",
                jobs=2,
            )
        finally:
            unregister_engine("test-custom-fast")
        assert parallel_custom.execution_times == serial.execution_times

    def test_worker_initializer_needs_no_registry(
        self, small_kernel_trace, tiny_hierarchy_config
    ):
        """Workers receive the resolved engine object, not a name to re-look-up.

        Spawn-based start methods re-import repro.engine in the child, which
        only re-registers the built-ins; shipping the resolved object keeps
        user-registered engines working there.  Simulate that child state by
        initialising the worker with an engine that is *not* registered.
        """
        compiled = CompiledTrace(
            small_kernel_trace, line_size=tiny_hierarchy_config.il1.line_size
        )
        parallel._init_seed_worker(
            tiny_hierarchy_config, compiled, RenamedFastEngine()
        )
        try:
            start, results = parallel._run_seed_chunk((0, [3, 4]))
        finally:
            parallel._worker_simulator = None
        assert start == 0
        assert [r.cycles for r in results] == [
            FastEngine().simulator(tiny_hierarchy_config, compiled).run(seed).cycles
            for seed in (3, 4)
        ]


class TestParallelLayoutCampaign:
    """The deterministic-layout path must also be bit-exact in parallel."""

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_bit_exact_with_serial(self, jobs):
        builder = EembcLayoutTraceBuilder("rspeed", scale=0.1)
        config = platform_setup("modulo")
        serial = run_layout_campaign(builder, config, runs=8, master_seed=6)
        parallel = run_layout_campaign(
            builder, config, runs=8, master_seed=6, jobs=jobs
        )
        assert parallel.execution_times == serial.execution_times
        assert parallel.workload == serial.workload

    def test_explicit_layouts(self):
        builder = EembcLayoutTraceBuilder("rspeed", scale=0.1)
        config = platform_setup("modulo")
        layouts = random_layouts(5, master_seed=9)
        serial = run_layout_campaign(builder, config, runs=0, layouts=layouts)
        parallel = run_layout_campaign(
            builder, config, runs=0, layouts=layouts, jobs=2
        )
        assert parallel.execution_times == serial.execution_times


class TestEmptyCampaignValidation:
    """CampaignResult rejects empty campaigns instead of failing later."""

    def test_empty_execution_times_rejected(self):
        with pytest.raises(ValueError, match="no execution times"):
            CampaignResult(workload="w", setup="s", execution_times=[])

    def test_properties_work_on_single_run(self):
        campaign = CampaignResult(workload="w", setup="s", execution_times=[42])
        assert campaign.high_water_mark == 42
        assert campaign.minimum == 42
        assert campaign.mean == 42.0

    def test_layout_campaign_rejects_zero_runs(self):
        builder = EembcLayoutTraceBuilder("rspeed", scale=0.1)
        with pytest.raises(ValueError, match="runs"):
            run_layout_campaign(builder, platform_setup("modulo"), runs=0)
