"""Tests for the ``python -m repro`` command-line interface."""

import csv
import io
import json

import pytest

from repro.__main__ import EXPERIMENTS, build_parser, main
from repro.analysis.report import CSV_HEADER
from repro.engine import available_engines


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for identifier in EXPERIMENTS:
            assert identifier in output

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table9"])

    def test_missing_command_is_an_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "finished" in output

    def test_run_fig1_with_small_campaign(self, capsys):
        assert main(["run", "fig1", "--runs", "40", "--scale", "0.25", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "pWCET" in output

    def test_run_ablation_replacement_small(self, capsys):
        assert main(["run", "ablation_repl", "--runs", "25", "--scale", "0.25"]) == 0
        assert "placement x replacement" in capsys.readouterr().out


class TestEngineSelection:
    def test_engine_choices_come_from_registry(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig5", "--engine", "numpy"])
        assert args.engine == "numpy"
        assert set(available_engines()) >= {"fast", "numpy", "reference"}

    def test_unregistered_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig5", "--engine", "warp"])

    def test_run_with_numpy_engine(self, capsys):
        assert main(
            ["run", "fig5", "--runs", "20", "--scale", "0.25", "--engine", "numpy"]
        ) == 0
        assert "pWCET" in capsys.readouterr().out


class TestOutputFormats:
    def test_json_format_is_parseable_and_self_identifying(self, capsys):
        assert main(["run", "table1", "--format", "json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["experiment"] == "table1"
        assert "asic" in payload["result"]
        # Progress chatter moves to stderr so stdout stays machine-readable.
        assert "finished" in captured.err
        assert "finished" not in captured.out

    def test_csv_format_emits_header_and_rows(self, capsys):
        assert main(["run", "table1", "--format", "csv"]) == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert lines[0] == CSV_HEADER
        rows = list(csv.reader(io.StringIO("\n".join(lines[1:]))))
        assert rows, "expected at least one data row"
        assert all(row[0] == "table1" and len(row) == 3 for row in rows)

    def test_text_format_is_default(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "finished" in out
