"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for identifier in EXPERIMENTS:
            assert identifier in output

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table9"])

    def test_missing_command_is_an_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "finished" in output

    def test_run_fig1_with_small_campaign(self, capsys):
        assert main(["run", "fig1", "--runs", "40", "--scale", "0.25", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "pWCET" in output

    def test_run_ablation_replacement_small(self, capsys):
        assert main(["run", "ablation_repl", "--runs", "25", "--scale", "0.25"]) == 0
        assert "placement x replacement" in capsys.readouterr().out
