"""Tests for the ``python -m repro`` command-line interface."""

import csv
import io
import json

import pytest

from repro.__main__ import EXPERIMENTS, build_parser, main
from repro.analysis.report import CSV_HEADER
from repro.engine import available_engines
from repro.engine.jit import numba_missing_reason


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for identifier in EXPERIMENTS:
            assert identifier in output

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "table9"])

    def test_missing_command_is_an_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRun:
    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "finished" in output

    def test_run_fig1_with_small_campaign(self, capsys):
        assert main(["run", "fig1", "--runs", "40", "--scale", "0.25", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "pWCET" in output

    def test_run_ablation_replacement_small(self, capsys):
        assert main(["run", "ablation_repl", "--runs", "25", "--scale", "0.25"]) == 0
        assert "placement x replacement" in capsys.readouterr().out


class TestEngineSelection:
    def test_engine_choices_come_from_registry(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig5", "--engine", "numpy"])
        assert args.engine == "numpy"
        assert set(available_engines()) >= {"fast", "numpy", "reference"}

    def test_jit_is_a_parser_choice_even_without_numba(self):
        # Registered engines are CLI choices regardless of availability;
        # the actionable error comes later, from settings validation.
        args = build_parser().parse_args(["run", "fig5", "--engine", "jit"])
        assert args.engine == "jit"

    def test_unregistered_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig5", "--engine", "warp"])

    def test_run_with_numpy_engine(self, capsys):
        assert main(
            ["run", "fig5", "--runs", "20", "--scale", "0.25", "--engine", "numpy"]
        ) == 0
        assert "pWCET" in capsys.readouterr().out

    @pytest.mark.skipif(
        numba_missing_reason() is None, reason="numba installed"
    )
    def test_unavailable_jit_fails_up_front_with_install_hint(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig5", "--runs", "20", "--engine", "jit"])
        assert excinfo.value.code == 2  # argparse usage error, pre-campaign
        err = capsys.readouterr().err
        assert "numba" in err and "jit" in err

    @pytest.mark.skipif(
        numba_missing_reason() is not None,
        reason="numba not installed (optional 'jit' extra)",
    )
    def test_run_with_jit_engine(self, capsys):
        assert main(
            ["run", "fig5", "--runs", "20", "--scale", "0.25", "--engine", "jit"]
        ) == 0
        assert "pWCET" in capsys.readouterr().out


class TestEnginesCommand:
    def test_engines_matrix_lists_every_registered_engine(self, capsys):
        from repro.engine import registered_engines

        assert main(["engines"]) == 0
        output = capsys.readouterr().out
        for name in registered_engines():
            assert name in output
        assert "available" in output

    def test_engines_matrix_reports_numba_importability(self, capsys):
        assert main(["engines"]) == 0
        output = capsys.readouterr().out
        assert "numba" in output
        expected = (
            "importable" if numba_missing_reason() is None else "not importable"
        )
        assert expected in output


class TestEstimatorSelection:
    def test_estimator_choices_come_from_registry(self):
        from repro.pwcet import available_estimators

        parser = build_parser()
        args = parser.parse_args(["run", "fig5", "--estimator", "gumbel-mle"])
        assert args.estimator == "gumbel-mle"
        assert set(available_estimators()) >= {
            "gumbel-pwm",
            "gumbel-mle",
            "exponential-excess",
        }

    def test_unregistered_estimator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig5", "--estimator", "weibull"])

    def test_run_with_exponential_excess(self, capsys):
        assert main(
            ["run", "fig5", "--runs", "20", "--scale", "0.25",
             "--estimator", "exponential-excess"]
        ) == 0
        assert "pWCET" in capsys.readouterr().out

    def test_legacy_alias_accepted_from_environment(self, capsys, monkeypatch):
        # REPRO_ESTIMATOR accepts the historical fit_method spellings.
        monkeypatch.setenv("REPRO_ESTIMATOR", "pwm")
        assert main(["run", "fig5", "--runs", "20", "--scale", "0.25"]) == 0
        assert "pWCET" in capsys.readouterr().out

    def test_bad_environment_estimator_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ESTIMATOR", "weibull")
        with pytest.raises(SystemExit):
            main(["run", "fig5", "--runs", "20", "--scale", "0.25"])


class TestPwcetCommand:
    def test_pwcet_list(self, capsys):
        assert main(["pwcet", "list"]) == 0
        output = capsys.readouterr().out
        assert "gumbel-pwm" in output
        assert "peaks-over-threshold" in output

    def test_pwcet_compare(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(
            ["pwcet", "compare", "fig5", "--runs", "24", "--scale", "0.25",
             "--store", store]
        ) == 0
        output = capsys.readouterr().out
        assert "pWCET estimator comparison" in output
        assert "pWCET gumbel-pwm" in output
        assert "pWCET exponential-excess" in output

    def test_pwcet_compare_subset_with_bootstrap(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(
            ["pwcet", "compare", "fig5", "--runs", "24", "--scale", "0.25",
             "--store", store, "--estimators", "gumbel-pwm", "--bootstrap", "20"]
        ) == 0
        output = capsys.readouterr().out
        assert "pWCET gumbel-pwm" in output
        assert "gumbel-mle" not in output
        assert "[" in output  # confidence interval rendered

    def test_pwcet_compare_rejects_tiny_campaign(self, capsys):
        assert main(["pwcet", "compare", "fig5", "--runs", "8"]) == 2
        assert "at least" in capsys.readouterr().err

    def test_pwcet_compare_honors_singular_estimator_flag(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(
            ["pwcet", "compare", "fig5", "--runs", "24", "--scale", "0.25",
             "--store", store, "--estimator", "gumbel-mle"]
        ) == 0
        output = capsys.readouterr().out
        assert "pWCET gumbel-mle" in output
        assert "gumbel-pwm" not in output


class TestShardedExecution:
    def test_study_run_sharded_and_resume_hits_cache(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(
            ["study", "run", "fig5", "--runs", "24", "--scale", "0.25",
             "--store", store, "--shard-size", "6", "--jobs", "2"]
        ) == 0
        first = capsys.readouterr().out
        assert "shards executed" in first
        assert main(
            ["study", "run", "fig5", "--runs", "24", "--scale", "0.25",
             "--store", store, "--shard-size", "6", "--resume"]
        ) == 0
        assert "full cache hit" in capsys.readouterr().out

    def test_resume_without_shard_size_is_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["study", "run", "fig5", "--runs", "24",
                 "--store", str(tmp_path / "s"), "--resume"]
            )

    def test_invalid_shard_size_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["study", "run", "fig5", "--runs", "24",
                 "--store", str(tmp_path / "s"), "--shard-size", "0"]
            )

    def test_worker_drains_queue_and_exec_status_reports(self, tmp_path, capsys):
        from repro.exec import FileQueue, plan_shards, shard_task
        from repro.study.scenario import HierarchySpec, Scenario, WorkloadSpec
        from repro.study.store import ResultStore

        scenario = Scenario(
            workload=WorkloadSpec.synthetic(4 * 1024, 2),
            hierarchy=HierarchySpec(setup="rm", with_l2=False),
            runs=8,
            master_seed=5,
        )
        store = ResultStore(tmp_path / "store")
        queue = FileQueue(store.queue_root)
        for shard in plan_shards(scenario.spec_hash(), scenario.runs, 4):
            queue.enqueue(shard_task(scenario, shard, scenario.engine))
        assert main(
            ["worker", "--store", str(store.root), "--worker-id", "cli-test",
             "--max-shards", "2"]
        ) == 0
        assert "2 shard(s) executed" in capsys.readouterr().out
        assert len(store.shard_keys(scenario.spec_hash())) == 2
        assert main(["exec", "status", "--store", str(store.root)]) == 0
        status = capsys.readouterr().out
        assert "cli-test" in status
        assert "published" in status

    def test_clean_analyses_only_preserves_campaigns(self, tmp_path, capsys):
        from repro.study.store import ResultStore

        store_dir = str(tmp_path / "store")
        store = ResultStore(store_dir)
        store.save_analysis("aaa", "cfg", {"v": 1})
        assert main(["study", "clean", "--analyses-only", "--store", store_dir]) == 0
        assert "1 analysis entries" in capsys.readouterr().out
        assert store.load_analysis("aaa", "cfg") is None

    def test_clean_older_than_sweeps_by_age(self, tmp_path, capsys):
        import os
        import time

        from repro.study.store import ResultStore

        store_dir = str(tmp_path / "store")
        store = ResultStore(store_dir)
        store.save_analysis("aaa", "cfg", {"v": 1})
        store.save_shard("aaa", "00000000x000004", {"version": 1})
        old = time.time() - 8 * 86400
        path = store.analysis_path_for("aaa", "cfg")
        os.utime(path, (old, old))
        assert main(["study", "clean", "--older-than", "7d", "--store", store_dir]) == 0
        assert "swept 1" in capsys.readouterr().out
        assert store.load_analysis("aaa", "cfg") is None
        assert store.load_shard("aaa", "00000000x000004") is not None

    def test_clean_rejects_bad_age(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["study", "clean", "--older-than", "soon",
                  "--store", str(tmp_path / "s")])


class TestOutputFormats:
    def test_json_format_is_parseable_and_self_identifying(self, capsys):
        assert main(["run", "table1", "--format", "json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["experiment"] == "table1"
        assert "asic" in payload["result"]
        # Progress chatter moves to stderr so stdout stays machine-readable.
        assert "finished" in captured.err
        assert "finished" not in captured.out

    def test_csv_format_emits_header_and_rows(self, capsys):
        assert main(["run", "table1", "--format", "csv"]) == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert lines[0] == CSV_HEADER
        rows = list(csv.reader(io.StringIO("\n".join(lines[1:]))))
        assert rows, "expected at least one data row"
        assert all(row[0] == "table1" and len(row) == 3 for row in rows)

    def test_text_format_is_default(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "finished" in out

    def test_json_format_surfaces_discarded_runs(self, capsys):
        # 25 runs -> effective block size 2 -> one trailing run is discarded
        # by block-maxima grouping, and --format json must say so.
        assert main(
            ["run", "fig1", "--runs", "25", "--scale", "0.25", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        analysis = payload["analysis"]
        assert analysis["a2time/rm"]["discarded_runs"] == 1.0
        assert analysis["a2time/rm"]["estimator"] == "gumbel-pwm"

    def test_json_format_analysis_follows_estimator(self, capsys):
        assert main(
            ["run", "fig5", "--runs", "24", "--scale", "0.25",
             "--estimator", "exponential-excess", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        estimators = {
            entry["estimator"] for entry in payload["analysis"].values()
        }
        assert estimators == {"exponential-excess"}
        for entry in payload["analysis"].values():
            assert entry["discarded_runs"] == 0.0


class TestExecStatusFormats:
    def _seed_queue(self, tmp_path):
        from repro.exec import FileQueue, plan_shards, shard_task
        from repro.study.scenario import HierarchySpec, Scenario, WorkloadSpec
        from repro.study.store import ResultStore

        scenario = Scenario(
            workload=WorkloadSpec.synthetic(4 * 1024, 2),
            hierarchy=HierarchySpec(setup="rm", with_l2=False),
            runs=8,
            master_seed=5,
        )
        store = ResultStore(tmp_path / "store")
        queue = FileQueue(store.queue_root)
        for shard in plan_shards(scenario.spec_hash(), scenario.runs, 4):
            queue.enqueue(shard_task(scenario, shard, scenario.engine))
        return scenario, store

    def test_json_format_is_parseable_and_matches_snapshot(
        self, tmp_path, capsys
    ):
        from repro.exec.status import exec_status_snapshot

        scenario, store = self._seed_queue(tmp_path)
        assert main(
            ["worker", "--store", str(store.root), "--worker-id", "cli-json"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["exec", "status", "--store", str(store.root), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        local = exec_status_snapshot(store)
        assert payload["queue_root"] == local["queue_root"]
        assert payload["totals"] == local["totals"]
        assert payload["specs"] == local["specs"]
        # Worker telemetry carries the engine name + availability (the
        # heartbeat ages differ between the two calls, so compare fields).
        [worker] = payload["workers"]
        assert worker["owner"] == "cli-json"
        assert worker["engine"] == "fast"
        assert worker["engine_availability"] is None

    def test_text_format_shows_the_engine_column(self, tmp_path, capsys):
        scenario, store = self._seed_queue(tmp_path)
        assert main(
            ["worker", "--store", str(store.root), "--worker-id", "cli-text"]
        ) == 0
        capsys.readouterr()
        assert main(["exec", "status", "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "engine" in out
        assert "fast" in out


class TestCleanDryRun:
    def test_dry_run_sweep_lists_without_deleting(self, tmp_path, capsys):
        from repro.study.store import ResultStore

        store_dir = str(tmp_path / "store")
        store = ResultStore(store_dir)
        store.save_analysis("aaa", "cfg", {"v": 1})
        store.save_shard("bbb", "00000000x000004", {"version": 1})
        assert main(
            ["study", "clean", "--older-than", "0s", "--dry-run",
             "--store", store_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "dry run: would sweep 2 derived entries" in out
        assert "aaa" in out and "bbb" in out
        assert store.load_analysis("aaa", "cfg") is not None
        assert store.load_shard("bbb", "00000000x000004") is not None

    def test_dry_run_analyses_only_scopes_the_plan(self, tmp_path, capsys):
        from repro.study.store import ResultStore

        store_dir = str(tmp_path / "store")
        store = ResultStore(store_dir)
        store.save_analysis("aaa", "cfg", {"v": 1})
        store.save_shard("bbb", "00000000x000004", {"version": 1})
        assert main(
            ["study", "clean", "--analyses-only", "--dry-run",
             "--store", store_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "would remove 1 analysis entries" in out
        assert "bbb" not in out
        assert store.load_analysis("aaa", "cfg") is not None

    def test_dry_run_full_clear_counts_like_clear(self, tmp_path, capsys):
        from repro.study.store import ResultStore

        store_dir = str(tmp_path / "store")
        store = ResultStore(store_dir)
        store.save_analysis("aaa", "cfg", {"v": 1})
        store.save_shard("bbb", "00000000x000004", {"version": 1})
        assert main(
            ["study", "clean", "--dry-run", "--store", store_dir]
        ) == 0
        out = capsys.readouterr().out
        assert "would remove 2 stored result(s)" in out
        # Nothing was deleted by the dry run; the real clear agrees on 2.
        assert main(["study", "clean", "--store", store_dir]) == 0
        assert "removed 2 stored result(s)" in capsys.readouterr().out
