"""Integration tests for the per-table/figure experiment drivers.

These run at much smaller scale than the benchmark harnesses (few runs, few
benchmarks where possible) — they check wiring, determinism and the expected
qualitative relations, not the exact magnitudes recorded in EXPERIMENTS.md.
"""

import pytest

from repro.analysis.experiments import (
    ExperimentSettings,
    experiment_avg_performance,
    experiment_fig1,
    experiment_fig4a,
    experiment_fig5,
    experiment_footprint_ablation,
    experiment_replacement_ablation,
    experiment_table1,
    experiment_table2,
)

SMALL = ExperimentSettings(runs=40, scale=0.25)


class TestSettings:
    def test_from_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS", "77")
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        settings = ExperimentSettings.from_env()
        assert settings.runs == 77
        assert settings.scale == 0.5

    def test_repro_full_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNS", raising=False)
        monkeypatch.setenv("REPRO_FULL", "1")
        assert ExperimentSettings.from_env().runs == 1000

    def test_setup_builds_leon3_config(self):
        assert ExperimentSettings().setup("rm").il1.placement == "rm"


class TestTable1:
    def test_shape_of_results(self):
        result = experiment_table1()
        assert set(result.asic) == {"RM", "hRP"}
        assert result.area_ratio > 5.0
        assert 0.1 < result.delay_reduction < 0.6
        assert result.fpga["hRP"]["frequency_mhz"] < result.fpga["RM"]["frequency_mhz"]
        assert "Table 1" in result.format()


class TestFig1:
    def test_curve_and_pwcet(self):
        result = experiment_fig1(SMALL, benchmark="a2time")
        assert result.benchmark == "a2time"
        assert len(result.empirical) >= 1
        values = [value for value, _ in result.projected]
        assert values == sorted(values)
        assert result.pwcet[1e-15] >= result.pwcet[1e-12]
        assert "pWCET" in result.format()


class TestFig5:
    def test_rm_tail_is_below_hrp_tail(self):
        result = experiment_fig5(SMALL, footprint_bytes=20 * 1024, iterations=3)
        assert set(result.samples) == {"rm", "hrp"}
        assert max(result.samples["rm"]) <= max(result.samples["hrp"])
        assert result.pwcet["rm"][1e-15] <= result.pwcet["hrp"][1e-15]
        assert "Figure 5" in result.format()


class TestAblation:
    def test_footprint_ablation_rows(self):
        result = experiment_footprint_ablation(
            ExperimentSettings(runs=30), footprints=(4 * 1024, 20 * 1024), iterations=2
        )
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["rm_pwcet"] <= row["hrp_pwcet"] * 1.05
        assert "Ablation" in result.format()

    def test_replacement_ablation_rows(self):
        result = experiment_replacement_ablation(ExperimentSettings(runs=25, scale=0.25))
        assert set(result.rows) == {"rm + random", "rm + lru", "hrp + random", "hrp + lru"}
        assert "placement x replacement" in result.format()


@pytest.mark.slow
class TestFullDrivers:
    """Slower end-to-end checks over the whole EEMBC suite at tiny scale."""

    def test_table2_all_benchmarks_pass_iid(self):
        result = experiment_table2(SMALL)
        assert len(result.rows) == 11
        assert result.all_passed
        assert "Table 2" in result.format()

    def test_fig4a_rm_never_worse_than_hrp(self):
        result = experiment_fig4a(SMALL)
        assert len(result.rows) == 11
        for benchmark, row in result.rows.items():
            assert row["ratio"] <= 1.05, benchmark
        assert 0.0 <= result.average_reduction <= 1.0

    def test_avg_performance_close_to_modulo(self):
        result = experiment_avg_performance(SMALL)
        assert len(result.rows) == 11
        assert result.average_degradation < 0.10
        assert result.max_degradation < 0.25
