"""Tests for the industrial high-water-mark baseline (analysis/hwm.py)."""

import pytest

from repro.analysis.hwm import (
    DEFAULT_ENGINEERING_MARGIN,
    HwmBound,
    high_water_mark,
    industrial_bound,
)


class TestHighWaterMark:
    def test_returns_maximum(self):
        assert high_water_mark([3.0, 9.0, 1.0]) == 9.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="must not be empty"):
            high_water_mark([])


class TestHwmBound:
    def test_bound_applies_margin(self):
        bound = HwmBound(hwm=1000.0, margin=0.20)
        assert bound.bound == pytest.approx(1200.0)

    def test_zero_margin_bound_equals_hwm(self):
        bound = HwmBound(hwm=1000.0, margin=0.0)
        assert bound.bound == 1000.0
        assert bound.within_margin(1000.0)
        assert not bound.within_margin(1000.0000001)

    def test_pwcet_ratio(self):
        bound = HwmBound(hwm=1000.0, margin=0.20)
        assert bound.pwcet_ratio(1070.0) == pytest.approx(1.07)
        assert bound.pwcet_ratio(1000.0) == 1.0

    def test_pwcet_ratio_rejects_non_positive_hwm(self):
        with pytest.raises(ValueError, match="positive"):
            HwmBound(hwm=0.0, margin=0.20).pwcet_ratio(100.0)
        with pytest.raises(ValueError, match="positive"):
            HwmBound(hwm=-5.0, margin=0.20).pwcet_ratio(100.0)

    def test_within_margin_boundary_is_inclusive(self):
        bound = HwmBound(hwm=1000.0, margin=0.20)
        assert bound.within_margin(bound.bound)
        assert not bound.within_margin(bound.bound * (1.0 + 1e-9))

    def test_pwcet_below_hwm_is_within_margin(self):
        bound = HwmBound(hwm=1000.0, margin=0.20)
        assert bound.within_margin(900.0)
        assert bound.pwcet_ratio(900.0) < 1.0


class TestIndustrialBound:
    def test_default_margin_is_twenty_percent(self):
        bound = industrial_bound([10.0, 50.0, 30.0])
        assert bound.margin == DEFAULT_ENGINEERING_MARGIN == 0.20
        assert bound.hwm == 50.0
        assert bound.bound == pytest.approx(60.0)

    def test_custom_margin(self):
        assert industrial_bound([100.0], margin=0.5).bound == pytest.approx(150.0)

    def test_zero_margin_allowed(self):
        assert industrial_bound([100.0], margin=0.0).bound == 100.0

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            industrial_bound([100.0], margin=-0.1)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError, match="must not be empty"):
            industrial_bound([])
