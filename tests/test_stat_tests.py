"""Tests for the MBPTA statistical admission tests."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.mbpta.tests import (
    STEPHENS_EXPONENTIAL_W2_POINTS,
    exponential_tail_test,
    identical_distribution_test,
    iid_assessment,
    ks_two_sample_test,
    stephens_critical_value,
    stephens_p_value,
    wald_wolfowitz_test,
)


def gumbel_sample(n, seed=0, loc=1000.0, scale=25.0):
    rng = np.random.default_rng(seed)
    return list(scipy_stats.gumbel_r.rvs(loc=loc, scale=scale, size=n, random_state=rng))


class TestWaldWolfowitz:
    def test_iid_sample_passes(self):
        result = wald_wolfowitz_test(gumbel_sample(500, seed=1))
        assert result.passed
        assert result.statistic < 1.96

    def test_strongly_trending_sample_fails(self):
        trending = list(np.linspace(0, 1000, 400) + np.random.default_rng(2).normal(0, 5, 400))
        result = wald_wolfowitz_test(trending)
        assert not result.passed
        assert result.statistic > 1.96

    def test_alternating_sample_fails(self):
        alternating = [0.0, 100.0] * 200
        assert not wald_wolfowitz_test(alternating).passed

    def test_constant_sample_trivially_passes(self):
        result = wald_wolfowitz_test([42.0] * 100)
        assert result.passed
        assert "degenerate" in result.details

    def test_rejects_tiny_sample(self):
        with pytest.raises(ValueError):
            wald_wolfowitz_test([1.0] * 5)

    def test_p_value_consistent_with_statistic(self):
        result = wald_wolfowitz_test(gumbel_sample(300, seed=3))
        # two-sided normal p-value
        expected = 2 * (1 - scipy_stats.norm.cdf(result.statistic))
        assert result.p_value == pytest.approx(expected, abs=1e-6)


class TestKolmogorovSmirnov:
    def test_same_distribution_passes(self):
        a = gumbel_sample(400, seed=8)
        b = gumbel_sample(400, seed=9)
        result = ks_two_sample_test(a, b)
        assert result.passed

    def test_different_distributions_fail(self):
        a = gumbel_sample(400, seed=6, loc=1000.0)
        b = gumbel_sample(400, seed=7, loc=1200.0)
        assert not ks_two_sample_test(a, b).passed

    def test_statistic_matches_scipy(self):
        a = gumbel_sample(200, seed=8)
        b = gumbel_sample(300, seed=9)
        ours = ks_two_sample_test(a, b)
        reference = scipy_stats.ks_2samp(a, b)
        assert ours.statistic == pytest.approx(reference.statistic, abs=1e-9)
        assert ours.p_value == pytest.approx(reference.pvalue, abs=0.02)

    def test_identical_constant_samples_pass(self):
        result = ks_two_sample_test([5.0] * 50, [5.0] * 50)
        assert result.passed and result.p_value == 1.0

    def test_rejects_tiny_samples(self):
        with pytest.raises(ValueError):
            ks_two_sample_test([1.0], [2.0, 3.0, 4.0, 5.0, 6.0])

    def test_identical_distribution_split_test(self):
        result = identical_distribution_test(gumbel_sample(600, seed=10))
        assert result.passed

    def test_identical_distribution_detects_drift(self):
        drifting = gumbel_sample(300, seed=11, loc=1000.0) + gumbel_sample(
            300, seed=12, loc=1400.0
        )
        assert not identical_distribution_test(drifting).passed

    def test_identical_distribution_rejects_tiny_sample(self):
        with pytest.raises(ValueError):
            identical_distribution_test([1.0] * 5)


class TestExponentialTail:
    def test_gumbel_sample_passes(self):
        result = exponential_tail_test(gumbel_sample(800, seed=13))
        assert result.passed

    def test_exponential_sample_passes(self):
        rng = np.random.default_rng(14)
        samples = list(rng.exponential(scale=100.0, size=800))
        assert exponential_tail_test(samples).passed

    def test_uniform_tail_fails(self):
        # A sharply bounded uniform tail is a poor exponential fit.
        rng = np.random.default_rng(15)
        samples = list(rng.uniform(0.0, 1.0, size=2000))
        result = exponential_tail_test(samples, tail_fraction=0.5)
        assert result.statistic > 0

    def test_constant_sample_trivially_passes(self):
        assert exponential_tail_test([7.0] * 100).passed

    def test_rejects_tiny_sample(self):
        with pytest.raises(ValueError):
            exponential_tail_test([1.0] * 10)

    def test_rejects_bad_tail_fraction(self):
        with pytest.raises(ValueError):
            exponential_tail_test(gumbel_sample(100), tail_fraction=0.9)


class TestStephensTable:
    """The ET p-value interpolates Stephens' critical-value table."""

    def test_tabulated_points_are_exact(self):
        for alpha, critical in STEPHENS_EXPONENTIAL_W2_POINTS:
            assert stephens_p_value(critical) == alpha
            assert stephens_critical_value(alpha) == pytest.approx(critical)

    def test_five_percent_boundary(self):
        # The historical hard-coded decision point: W2* = 0.224 at 5 %.
        assert stephens_critical_value(0.05) == 0.224
        assert stephens_p_value(0.224) == 0.05
        assert stephens_p_value(0.224 - 1e-9) > 0.05
        assert stephens_p_value(0.224 + 1e-9) < 0.05

    def test_p_value_monotone_decreasing(self):
        grid = np.linspace(0.0, 0.6, 200)
        values = [stephens_p_value(float(w)) for w in grid]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_extrapolation_is_clamped(self):
        assert stephens_p_value(0.0) == 1.0
        assert stephens_p_value(1e-6) <= 1.0
        assert 0.0 < stephens_p_value(5.0) < 0.01

    def test_interpolation_between_points(self):
        # Between the 10 % (0.177) and 5 % (0.224) rows.
        middle = stephens_p_value(0.2)
        assert 0.05 < middle < 0.10

    def test_critical_value_rejects_bad_significance(self):
        with pytest.raises(ValueError):
            stephens_critical_value(0.0)
        with pytest.raises(ValueError):
            stephens_critical_value(1.0)

    def test_decision_at_boundary_matches_p_value(self):
        # A sample whose statistic lands near the critical point must have a
        # consistent (passed, p_value) pair.
        rng = np.random.default_rng(18)
        samples = list(rng.exponential(scale=100.0, size=400))
        result = exponential_tail_test(samples)
        assert result.passed == (result.statistic < 0.224)
        assert result.passed == (result.p_value > 0.05)

    def test_et_p_value_comes_from_table(self):
        result = exponential_tail_test(gumbel_sample(800, seed=13))
        assert result.p_value == stephens_p_value(result.statistic)


class TestIidAssessment:
    def test_iid_gumbel_sample_passes_all(self):
        assessment = iid_assessment(gumbel_sample(600, seed=16))
        assert assessment.passed
        ww, ks, et = assessment.as_row()
        assert ww < 1.96
        assert ks > 0.05

    def test_trending_sample_fails_overall(self):
        trending = list(np.linspace(0, 1000, 600))
        assessment = iid_assessment(trending)
        assert not assessment.passed

    def test_as_row_shape(self):
        row = iid_assessment(gumbel_sample(200, seed=17)).as_row()
        assert len(row) == 3
