"""Unit and property tests for repro.core.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bits import (
    bit_slice,
    ceil_log2,
    fold_xor,
    from_bits,
    is_power_of_two,
    mask,
    parity,
    rotate_left,
    rotate_right,
    to_bits,
)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small_widths(self):
        assert mask(1) == 1
        assert mask(4) == 0xF
        assert mask(8) == 0xFF

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestPowerOfTwo:
    def test_powers(self):
        for exponent in range(12):
            assert is_power_of_two(1 << exponent)

    def test_non_powers(self):
        for value in (0, 3, 5, 6, 7, 9, 12, 100, -4):
            assert not is_power_of_two(value)


class TestCeilLog2:
    def test_exact_powers(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(128) == 7

    def test_non_powers_round_up(self):
        assert ceil_log2(3) == 2
        assert ceil_log2(129) == 8

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ceil_log2(0)


class TestRotate:
    def test_rotate_left_basic(self):
        assert rotate_left(0b0001, 1, 4) == 0b0010
        assert rotate_left(0b1000, 1, 4) == 0b0001

    def test_rotate_right_basic(self):
        assert rotate_right(0b0001, 1, 4) == 0b1000

    def test_rotate_by_width_is_identity(self):
        assert rotate_left(0b1011, 4, 4) == 0b1011

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            rotate_left(1, 1, 0)

    @given(value=st.integers(0, 2**16 - 1), amount=st.integers(0, 40))
    def test_left_then_right_roundtrip(self, value, amount):
        assert rotate_right(rotate_left(value, amount, 16), amount, 16) == value

    @given(value=st.integers(0, 2**12 - 1), amount=st.integers(0, 30))
    def test_rotation_preserves_popcount(self, value, amount):
        assert bin(rotate_left(value, amount, 12)).count("1") == bin(value).count("1")


class TestFoldXor:
    def test_identity_when_narrower(self):
        assert fold_xor(0b101, 3, 8) == 0b101

    def test_folds_chunks(self):
        # 0xAB = 0xA (high nibble) xor 0xB (low nibble) when folded to 4 bits.
        assert fold_xor(0xAB, 8, 4) == 0xA ^ 0xB

    def test_rejects_bad_out_width(self):
        with pytest.raises(ValueError):
            fold_xor(1, 8, 0)

    @given(value=st.integers(0, 2**24 - 1))
    def test_result_fits_out_width(self, value):
        assert 0 <= fold_xor(value, 24, 7) < 128

    @given(a=st.integers(0, 2**20 - 1), b=st.integers(0, 2**20 - 1))
    def test_fold_is_linear_over_xor(self, a, b):
        assert fold_xor(a ^ b, 20, 6) == fold_xor(a, 20, 6) ^ fold_xor(b, 20, 6)


class TestBitVectors:
    def test_to_bits_lsb_first(self):
        assert to_bits(0b1101, 4) == [1, 0, 1, 1]

    def test_from_bits_roundtrip(self):
        assert from_bits(to_bits(0xC3, 8)) == 0xC3

    def test_from_bits_rejects_non_bits(self):
        with pytest.raises(ValueError):
            from_bits([0, 2, 1])

    @given(value=st.integers(0, 2**10 - 1))
    def test_roundtrip_property(self, value):
        assert from_bits(to_bits(value, 10)) == value


class TestBitSliceAndParity:
    def test_bit_slice(self):
        assert bit_slice(0xABCD, 4, 8) == 0xBC

    def test_bit_slice_rejects_negative(self):
        with pytest.raises(ValueError):
            bit_slice(1, -1, 4)

    def test_parity(self):
        assert parity(0) == 0
        assert parity(0b111) == 1
        assert parity(0b1111) == 0

    def test_parity_rejects_negative(self):
        with pytest.raises(ValueError):
            parity(-1)
