"""The columnar result-store tier (repro.study.columnar + store format).

The codec itself is a pure function pinned by round-trip tests; what these
tests certify is the *storage contract*: columnar entries round-trip
bit-exact with the JSON era, JSON-era entries stay readable (no migration
flags) and upgrade in place on first touch, corrupt or truncated payloads
read as misses and self-heal on the next save (mirroring the mapcache
corruption suite), the manifest stays a disposable index over the entry
files, and ``clear`` leaves no orphaned files behind.
"""

import json

import numpy as np
import pytest

from repro.study import ResultStore, Scenario, WorkloadSpec, HierarchySpec
from repro.study import columnar
from repro.study.columnar import (
    COLUMNAR_SUFFIX,
    is_columnar,
    pack_entry,
    read_columns,
    read_entry,
    unpack_entry,
)
from repro.analysis.campaign import CampaignResult


def tiny_scenario(**overrides) -> Scenario:
    defaults = dict(
        workload=WorkloadSpec.synthetic(4 * 1024, iterations=2),
        hierarchy=HierarchySpec.named("rm"),
        runs=24,
        master_seed=99,
    )
    defaults.update(overrides)
    return Scenario(**defaults)


def campaign_for(scenario, times=None):
    times = times if times is not None else [1000 + 7 * i for i in range(scenario.runs)]
    return CampaignResult(
        workload="synthetic_4KB",
        setup="rm",
        execution_times=times,
        master_seed=scenario.effective_seed,
    )


MISS_SUMMARY = {"il1_miss_rate": 0.25, "dl1_miss_rate": 0.5, "l2_miss_rate": 0.125}


def legacy_entry_payload(scenario, campaign, summary=MISS_SUMMARY):
    """A JSON-era store entry, as the pre-columnar code wrote it."""
    return {
        "version": 1,
        "spec": scenario.spec_dict(),
        "workload": campaign.workload,
        "setup": campaign.setup,
        "master_seed": campaign.master_seed,
        "execution_times": list(campaign.execution_times),
        "miss_summary": dict(summary),
    }


# ---------------------------------------------------------------------------
# Codec: round trip, dtype narrowing, corruption
# ---------------------------------------------------------------------------


class TestCodec:
    def test_round_trip_preserves_meta_and_columns_exactly(self):
        meta = {"version": 1, "spec": {"runs": 3, "nested": [1, "two"]}, "note": "x"}
        columns = {"cycles": [5, 70_000, 123], "misses": [0, 1, 2]}
        frame = pack_entry(meta, columns)
        assert is_columnar(frame)
        got_meta, got_columns = unpack_entry(frame)
        assert got_meta == meta
        assert got_columns == {"cycles": [5, 70_000, 123], "misses": [0, 1, 2]}
        # Plain Python ints, bit-exact with the JSON era.
        assert all(type(v) is int for v in got_columns["cycles"])

    @pytest.mark.parametrize(
        "values, expected",
        [
            ([0, 255], "u1"),
            ([0, 256], "u2"),
            ([0, 0xFFFF], "u2"),
            ([0, 0x10000], "u4"),
            ([0, 0xFFFFFFFF], "u4"),
            ([0, 0x100000000], "u8"),
            ([-1, 5], "i8"),
            ([], "u1"),
        ],
    )
    def test_narrowest_sufficient_dtype(self, values, expected):
        frame = pack_entry({}, {"c": values})
        header = json.loads(
            frame[len(b"RCOL1\x00") + 4 :][
                : int.from_bytes(frame[6:10], "big")
            ].decode()
        )
        (spec,) = header["columns"]
        assert spec["dtype"] == expected
        assert spec["count"] == len(values)
        assert unpack_entry(frame)[1]["c"] == list(values)

    def test_values_beyond_int64_take_the_slow_path_but_round_trip(self):
        values = [0, 2**64 - 1]  # overflows the i8 fast path, fits u8
        meta, columns = unpack_entry(pack_entry({}, {"c": values}))
        assert columns["c"] == values

    def test_column_order_defines_payload_layout(self):
        frame = pack_entry({}, {"b": [1, 2], "a": [3]})
        _, columns = unpack_entry(frame)
        assert list(columns) == ["b", "a"]

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda frame: b"JUNK" + frame[4:],  # bad magic
            lambda frame: frame[:8],  # truncated header
            lambda frame: frame[:-1],  # truncated payload
            lambda frame: frame[:-1] + bytes([frame[-1] ^ 0xFF]),  # bit flip
            lambda frame: frame + b"\x00",  # trailing bytes
        ],
    )
    def test_corruption_raises_value_error(self, mutate):
        frame = pack_entry({"version": 1}, {"c": [1, 2, 70_000]})
        with pytest.raises(ValueError):
            unpack_entry(mutate(frame))

    def test_header_that_is_not_json_raises_value_error(self):
        payload = b""
        header = b"not json at all"
        frame = b"RCOL1\x00" + len(header).to_bytes(4, "big") + header + payload
        with pytest.raises(ValueError):
            unpack_entry(frame)

    def test_read_columns_is_a_zero_copy_view(self, tmp_path):
        path = tmp_path / f"entry{COLUMNAR_SUFFIX}"
        path.write_bytes(pack_entry({"version": 1}, {"c": [9, 8, 70_000]}))
        meta, arrays = read_columns(path)
        assert meta == {"version": 1}
        assert arrays["c"].tolist() == [9, 8, 70_000]
        # A view over the mapped file, not a materialized copy.
        assert arrays["c"].base is not None
        assert read_entry(path) == ({"version": 1}, {"c": [9, 8, 70_000]})


# ---------------------------------------------------------------------------
# Store: columnar entries + the legacy JSON tier
# ---------------------------------------------------------------------------


class TestStoreEntries:
    def test_save_load_round_trip_is_bit_exact(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenario = tiny_scenario()
        campaign = campaign_for(scenario)
        path = store.save(scenario, campaign, MISS_SUMMARY)
        assert path.suffix == COLUMNAR_SUFFIX
        stored = store.load(scenario.spec_hash())
        assert stored.execution_times == campaign.execution_times
        assert all(type(v) is int for v in stored.execution_times)
        assert stored.miss_summary == MISS_SUMMARY
        assert stored.spec == scenario.spec_dict()

    def test_legacy_json_entry_loads_without_migration_flags(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenario = tiny_scenario()
        campaign = campaign_for(scenario)
        store.root.mkdir(parents=True)
        legacy = store.legacy_path_for(scenario.spec_hash())
        legacy.write_text(json.dumps(legacy_entry_payload(scenario, campaign)))

        stored = store.load(scenario.spec_hash())
        assert stored is not None
        assert stored.execution_times == campaign.execution_times
        assert stored.miss_summary == MISS_SUMMARY

    def test_legacy_entry_upgrades_in_place_on_first_touch(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenario = tiny_scenario()
        campaign = campaign_for(scenario)
        store.root.mkdir(parents=True)
        spec_hash = scenario.spec_hash()
        store.legacy_path_for(spec_hash).write_text(
            json.dumps(legacy_entry_payload(scenario, campaign))
        )

        first = store.load(spec_hash)
        assert store.path_for(spec_hash).is_file()  # rewritten columnar
        assert not store.legacy_path_for(spec_hash).exists()  # JSON dropped
        second = store.load(spec_hash)  # served from the columnar tier now
        assert second.execution_times == first.execution_times == campaign.execution_times

    def test_legacy_version_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenario = tiny_scenario()
        store.root.mkdir(parents=True)
        payload = legacy_entry_payload(scenario, campaign_for(scenario))
        payload["version"] = 999
        store.legacy_path_for(scenario.spec_hash()).write_text(json.dumps(payload))
        assert store.load(scenario.spec_hash()) is None

    def test_corrupt_columnar_entry_is_a_miss_and_self_heals(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenario = tiny_scenario()
        campaign = campaign_for(scenario)
        store.save(scenario, campaign, MISS_SUMMARY)
        spec_hash = scenario.spec_hash()

        store.path_for(spec_hash).write_text("not a columnar frame")
        assert store.load(spec_hash) is None  # miss, never an error

        store.save(scenario, campaign, MISS_SUMMARY)  # the next save heals it
        assert store.load(spec_hash).execution_times == campaign.execution_times

    def test_truncated_columnar_entry_falls_back_to_legacy_tier(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenario = tiny_scenario()
        campaign = campaign_for(scenario)
        spec_hash = scenario.spec_hash()
        store.save(scenario, campaign, MISS_SUMMARY)
        # Truncate the columnar file mid-payload; keep a valid legacy entry.
        frame = store.path_for(spec_hash).read_bytes()
        store.path_for(spec_hash).write_bytes(frame[: len(frame) // 2])
        store.legacy_path_for(spec_hash).write_text(
            json.dumps(legacy_entry_payload(scenario, campaign))
        )
        stored = store.load(spec_hash)
        assert stored.execution_times == campaign.execution_times

    def test_save_drops_the_superseded_legacy_file(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenario = tiny_scenario()
        campaign = campaign_for(scenario)
        store.root.mkdir(parents=True)
        spec_hash = scenario.spec_hash()
        store.legacy_path_for(spec_hash).write_text(
            json.dumps(legacy_entry_payload(scenario, campaign))
        )
        store.save(scenario, campaign, MISS_SUMMARY)
        assert not store.legacy_path_for(spec_hash).exists()


class TestLoadColumns:
    def test_columnar_entry_returns_array_views(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenario = tiny_scenario()
        campaign = campaign_for(scenario)
        store.save(scenario, campaign, MISS_SUMMARY)
        meta, columns = store.load_columns(scenario.spec_hash())
        assert meta["spec"] == scenario.spec_dict()
        assert meta["miss_summary"] == MISS_SUMMARY
        times = columns["execution_times"]
        assert isinstance(times, np.ndarray)
        assert times.tolist() == campaign.execution_times

    def test_legacy_entry_is_converted_and_upgraded(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenario = tiny_scenario()
        campaign = campaign_for(scenario)
        store.root.mkdir(parents=True)
        spec_hash = scenario.spec_hash()
        store.legacy_path_for(spec_hash).write_text(
            json.dumps(legacy_entry_payload(scenario, campaign))
        )
        meta, columns = store.load_columns(spec_hash)
        assert columns["execution_times"].tolist() == campaign.execution_times
        assert store.path_for(spec_hash).is_file()  # upgraded on touch

    def test_missing_key_is_none(self, tmp_path):
        assert ResultStore(tmp_path / "store").load_columns("0" * 64) is None


# ---------------------------------------------------------------------------
# Shards: columnar + legacy tier
# ---------------------------------------------------------------------------


SHARD_PAYLOAD = {
    "version": 1,
    "spec_hash": "abc",
    "start": 0,
    "count": 3,
    "workload": "synthetic_4KB",
    "engine": "fast",
    "cycles": [1000, 70_000, 1002],
    "il1_misses": [3, 0, 1],
}


class TestShards:
    def test_shard_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.save_shard("abc", "0-2", SHARD_PAYLOAD)
        loaded = store.load_shard("abc", "0-2")
        assert loaded["cycles"] == SHARD_PAYLOAD["cycles"]
        assert loaded["il1_misses"] == SHARD_PAYLOAD["il1_misses"]
        assert loaded["workload"] == "synthetic_4KB"
        assert store.shard_path_for("abc", "0-2").suffix == COLUMNAR_SUFFIX

    def test_legacy_json_shard_loads_and_upgrades(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.shard_root.mkdir(parents=True)
        store.legacy_shard_path_for("abc", "0-2").write_text(
            json.dumps(SHARD_PAYLOAD)
        )
        loaded = store.load_shard("abc", "0-2")
        assert loaded["cycles"] == SHARD_PAYLOAD["cycles"]
        assert store.shard_path_for("abc", "0-2").is_file()
        assert not store.legacy_shard_path_for("abc", "0-2").exists()

    def test_corrupt_shard_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.save_shard("abc", "0-2", SHARD_PAYLOAD)
        store.shard_path_for("abc", "0-2").write_text("garbage")
        assert store.load_shard("abc", "0-2") is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        payload = dict(SHARD_PAYLOAD, version=999)
        store.save_shard("abc", "0-2", payload)
        assert store.load_shard("abc", "0-2") is None


# ---------------------------------------------------------------------------
# Manifest: a disposable index, never the source of truth
# ---------------------------------------------------------------------------


class TestManifest:
    def _saved(self, tmp_path, count=3):
        store = ResultStore(tmp_path / "store")
        hashes = []
        for i in range(count):
            scenario = tiny_scenario(master_seed=100 + i)
            store.save(scenario, campaign_for(scenario), MISS_SUMMARY)
            hashes.append(scenario.spec_hash())
        return store, sorted(hashes)

    def test_keys_are_manifest_backed_and_sorted(self, tmp_path):
        store, hashes = self._saved(tmp_path)
        assert store.keys() == hashes
        assert store.manifest_path.is_file()

    def test_deleted_manifest_rebuilds_from_a_directory_scan(self, tmp_path):
        store, hashes = self._saved(tmp_path)
        store.manifest_path.unlink()
        # A fresh instance (no warm append cache) must rematerialize it.
        assert ResultStore(store.root).keys() == hashes

    def test_repeated_saves_do_not_grow_the_manifest(self, tmp_path):
        store, hashes = self._saved(tmp_path, count=1)
        scenario = tiny_scenario(master_seed=100)
        before = store.manifest_path.read_text()
        for _ in range(5):
            store.save(scenario, campaign_for(scenario), MISS_SUMMARY)
        assert store.manifest_path.read_text() == before

    def test_republish_after_removal_relists_the_key(self, tmp_path):
        # The instance-level append cache must not swallow the re-add of a
        # key whose removal it recorded in between.
        store = ResultStore(tmp_path / "store")
        store.save_shard("abc", "0-2", SHARD_PAYLOAD)
        assert store.shard_keys() == [("abc", "0-2")]
        assert store.clear_shards() == 1
        assert store.shard_keys() == []
        store.save_shard("abc", "0-2", SHARD_PAYLOAD)
        assert store.shard_keys() == [("abc", "0-2")]

    def test_torn_and_foreign_lines_are_ignored(self, tmp_path):
        store, hashes = self._saved(tmp_path)
        with open(store.manifest_path, "a") as handle:
            handle.write("+ results\n")  # torn line
            handle.write("? bogus operation\n")
            handle.write("+ unknown-kind name\n")
        assert store.keys() == hashes

    def test_legacy_store_without_manifest_lists_json_entries(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        scenario = tiny_scenario()
        store.root.mkdir(parents=True)
        store.legacy_path_for(scenario.spec_hash()).write_text(
            json.dumps(legacy_entry_payload(scenario, campaign_for(scenario)))
        )
        assert store.keys() == [scenario.spec_hash()]


# ---------------------------------------------------------------------------
# GC: sweep and clear leave no orphans
# ---------------------------------------------------------------------------


def _populated_store(tmp_path):
    """A store exercising every artifact kind the format knows about."""
    from repro.study import build_run_table

    store = ResultStore(tmp_path / "store")
    scenario = tiny_scenario()
    store.save(scenario, campaign_for(scenario), MISS_SUMMARY)
    store.save_analysis(scenario.spec_hash(), "deadbeef", {"version": 1})
    store.save_shard(scenario.spec_hash(), "0-2", SHARD_PAYLOAD)
    store.record_study("smoke", [scenario.spec_hash()])
    build_run_table(store)  # materializes runtable/rows.json
    # Stray tmp files from interrupted writers, queue + map artifacts.
    (store.root / "orphan.rcol.tmp").write_bytes(b"")
    (store.analysis_root / "orphan.json.tmp").write_text("")
    (store.shard_root / "orphan.rcol.tmp").write_bytes(b"")
    for sub in ("tasks", "leases", "workers"):
        directory = store.queue_root / sub
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "w1.json").write_text("{}")
    store.map_root.mkdir(parents=True, exist_ok=True)
    (store.map_root / "cafebabe.map").write_bytes(b"\x00")
    return store


class TestGarbageCollection:
    def test_clear_leaves_no_orphaned_files(self, tmp_path):
        store = _populated_store(tmp_path)
        removed = store.clear()
        assert removed >= 1
        leftovers = [p for p in store.root.rglob("*") if p.is_file()]
        assert leftovers == []

    def test_sweep_covers_tmp_and_runtable_artifacts(self, tmp_path):
        store = _populated_store(tmp_path)
        assert store.sweep(older_than=0.0) > 0
        # Campaign entries are the results — a sweep never touches them —
        # and the manifest/provenance/map bookkeeping stays.  Everything
        # derived (analyses, shards, run-table rows, queue files, stray
        # ``*.tmp``) must be gone.
        survivors = sorted(
            p.name for p in store.root.rglob("*") if p.is_file()
        )
        scenario = tiny_scenario()
        assert survivors == sorted(
            [
                f"{scenario.spec_hash()}.rcol",
                "manifest.log",
                "studies.log",
                "cafebabe.map",
            ]
        )

    def test_analyses_only_sweep_keeps_campaign_entries(self, tmp_path):
        store = _populated_store(tmp_path)
        keys_before = store.keys()
        store.sweep(older_than=0.0, analyses_only=True)
        assert store.keys() == keys_before
        assert store.analysis_keys() == []
