"""Unit tests of the engine registry and the capability flags."""

import pytest

from repro.cache.fastsim import CompiledTrace, FastHierarchySimulator
from repro.engine import (
    Engine,
    FastEngine,
    JitEngine,
    JitUnavailable,
    ReferenceEngine,
    available_engines,
    engine_capabilities,
    get_engine,
    register_engine,
    registered_engines,
    unregister_engine,
)
from repro.engine.jit import numba_missing_reason


class TestRegistryLookup:
    def test_builtin_engines_registered(self):
        names = available_engines()
        assert "fast" in names
        assert "reference" in names
        assert "numpy" in names  # numpy is a declared dependency

    def test_available_engines_sorted(self):
        assert list(available_engines()) == sorted(available_engines())

    def test_get_engine_returns_named_engine(self):
        assert get_engine("fast").name == "fast"
        assert isinstance(get_engine("reference"), ReferenceEngine)

    def test_unknown_engine_error_lists_registered_names(self):
        with pytest.raises(ValueError, match="unknown engine 'warp'") as excinfo:
            get_engine("warp")
        message = str(excinfo.value)
        for name in registered_engines():
            assert name in message

    def test_registered_engines_includes_optional_tiers(self):
        """Optional-dependency engines are always *registered*..."""
        assert "jit" in registered_engines()
        assert list(registered_engines()) == sorted(registered_engines())

    def test_available_engines_filters_unusable_tiers(self):
        """...but only *available* when their dependency imports."""
        if numba_missing_reason() is None:
            assert "jit" in available_engines()
        else:
            assert "jit" not in available_engines()
        assert set(available_engines()) <= set(registered_engines())


class TestRegistration:
    def _make_stub(self, stub_name):
        class StubEngine(Engine):
            name = stub_name
            supports_batch = False
            bit_exact = False
            requires_pickle = False

            def simulator(self, config, compiled):
                raise NotImplementedError

        return StubEngine()

    def test_register_and_unregister(self):
        stub = self._make_stub("stub-engine")
        try:
            register_engine(stub)
            assert get_engine("stub-engine") is stub
            assert "stub-engine" in available_engines()
        finally:
            unregister_engine("stub-engine")
        with pytest.raises(ValueError, match="unknown engine"):
            get_engine("stub-engine")

    def test_duplicate_registration_rejected(self):
        stub = self._make_stub("stub-dup")
        try:
            register_engine(stub)
            with pytest.raises(ValueError, match="already registered"):
                register_engine(self._make_stub("stub-dup"))
            replacement = self._make_stub("stub-dup")
            register_engine(replacement, replace=True)
            assert get_engine("stub-dup") is replacement
        finally:
            unregister_engine("stub-dup")

    def test_abstract_name_rejected(self):
        class Nameless(Engine):
            def simulator(self, config, compiled):
                raise NotImplementedError

        with pytest.raises(ValueError, match="concrete name"):
            register_engine(Nameless())


class TestCapabilities:
    def test_capability_flags(self):
        fast = get_engine("fast")
        assert fast.supports_batch and fast.bit_exact and fast.requires_pickle
        reference = get_engine("reference")
        assert not reference.supports_batch
        assert reference.bit_exact and reference.requires_pickle
        vectorized = get_engine("numpy")
        assert vectorized.supports_batch and vectorized.bit_exact
        assert vectorized.requires_pickle

    def test_capability_matrix_describes_every_engine(self):
        matrix = engine_capabilities()
        assert set(matrix) == set(registered_engines())
        for name, capabilities in matrix.items():
            assert capabilities["name"] == name
            for flag in ("supports_batch", "bit_exact", "requires_pickle",
                         "available"):
                assert isinstance(capabilities[flag], bool)
            availability = capabilities["availability"]
            assert availability is None or isinstance(availability, str)
            assert capabilities["available"] == (availability is None)

    def test_always_available_engines_report_no_reason(self):
        for name in ("fast", "reference", "numpy"):
            engine = get_engine(name)
            assert engine.availability() is None
            assert engine.available


class TestJitAvailability:
    def test_jit_engine_is_resolvable_even_without_numba(self):
        engine = get_engine("jit")
        assert isinstance(engine, JitEngine)
        assert engine.supports_batch and engine.bit_exact

    @pytest.mark.skipif(
        numba_missing_reason() is None, reason="numba installed"
    )
    def test_jit_simulator_fails_with_install_hint(
        self, small_kernel_trace, tiny_hierarchy_config
    ):
        compiled = CompiledTrace(
            small_kernel_trace, line_size=tiny_hierarchy_config.il1.line_size
        )
        engine = get_engine("jit")
        assert not engine.available
        reason = engine.availability()
        assert "numba" in reason and "jit" in reason
        with pytest.raises(JitUnavailable, match="numba"):
            engine.simulator(tiny_hierarchy_config, compiled)

    def test_force_python_tier_is_always_available(self):
        engine = JitEngine(force_python=True)
        assert engine.available
        assert engine.availability() is None


class TestSimulatorConstruction:
    def test_fast_engine_builds_fast_simulator(self, small_kernel_trace, tiny_hierarchy_config):
        compiled = CompiledTrace(
            small_kernel_trace, line_size=tiny_hierarchy_config.il1.line_size
        )
        simulator = FastEngine().simulator(tiny_hierarchy_config, compiled)
        assert isinstance(simulator, FastHierarchySimulator)
        assert simulator.run(3).cycles > 0

    def test_reference_engine_rejects_mixed_line_sizes(self, small_kernel_trace):
        """The oracle refuses configs it cannot replay exactly, loudly."""
        from repro.cache.cache import CacheConfig
        from repro.cache.hierarchy import HierarchyConfig

        config = HierarchyConfig(
            il1=CacheConfig(name="IL1", size_bytes=1024, ways=2, line_size=32),
            dl1=CacheConfig(name="DL1", size_bytes=1024, ways=2, line_size=16),
        )
        compiled = CompiledTrace(small_kernel_trace, line_size=config.il1.line_size)
        with pytest.raises(ValueError, match="line size"):
            ReferenceEngine().simulator(config, compiled)
