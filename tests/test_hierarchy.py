"""Tests for the two-level cache hierarchy."""

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig, MemoryTimings
from repro.platform.leon3 import leon3_hierarchy


def small_hierarchy(l2=True, l1_placement="modulo", l1_replacement="lru"):
    il1 = CacheConfig(
        name="IL1", size_bytes=512, ways=2, line_size=32,
        placement=l1_placement, replacement=l1_replacement,
    )
    dl1 = CacheConfig(
        name="DL1", size_bytes=512, ways=2, line_size=32,
        placement=l1_placement, replacement=l1_replacement,
    )
    l2_config = (
        CacheConfig(
            name="L2", size_bytes=2048, ways=4, line_size=32,
            placement="modulo", replacement="lru", write_policy="write-back",
        )
        if l2
        else None
    )
    return CacheHierarchy(
        HierarchyConfig(il1=il1, dl1=dl1, l2=l2_config, timings=MemoryTimings()),
        seed=0,
    )


class TestTimings:
    def test_default_latencies(self):
        timings = MemoryTimings()
        assert timings.l1_hit == 1
        assert timings.l2_hit > timings.l1_hit
        assert timings.memory > timings.l2_hit

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            MemoryTimings(l1_hit=-1)


class TestLatencies:
    def test_cold_fetch_pays_full_path(self):
        hierarchy = small_hierarchy()
        timings = hierarchy.config.timings
        latency = hierarchy.fetch(0x1000)
        assert latency == timings.l1_hit + timings.l2_hit + timings.memory

    def test_warm_fetch_is_l1_hit(self):
        hierarchy = small_hierarchy()
        hierarchy.fetch(0x1000)
        assert hierarchy.fetch(0x1000) == hierarchy.config.timings.l1_hit

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = small_hierarchy()
        timings = hierarchy.config.timings
        way_span = 8 * 32  # IL1 way size
        hierarchy.fetch(0x0)
        hierarchy.fetch(way_span)
        hierarchy.fetch(2 * way_span)  # evicts 0x0 from IL1, still in L2
        assert hierarchy.fetch(0x0) == timings.l1_hit + timings.l2_hit

    def test_no_l2_hierarchy_goes_to_memory(self):
        hierarchy = small_hierarchy(l2=False)
        timings = hierarchy.config.timings
        assert hierarchy.load(0x40) == timings.l1_hit + timings.memory
        assert hierarchy.memory_accesses == 1

    def test_cycles_accumulate(self):
        hierarchy = small_hierarchy()
        total = sum(hierarchy.fetch(0x1000) for _ in range(3))
        assert hierarchy.cycles == total


class TestDataPath:
    def test_store_hit_costs_l1_latency(self):
        hierarchy = small_hierarchy()
        hierarchy.load(0x2000)
        assert hierarchy.store(0x2000) == hierarchy.config.timings.l1_hit

    def test_write_through_store_updates_l2_stats(self):
        hierarchy = small_hierarchy()
        hierarchy.load(0x2000)
        l2_accesses_before = hierarchy.l2.stats.accesses
        hierarchy.store(0x2000)
        assert hierarchy.l2.stats.accesses == l2_accesses_before + 1

    def test_store_miss_does_not_allocate_in_l1(self):
        hierarchy = small_hierarchy()
        hierarchy.store(0x3000)
        assert hierarchy.dl1.stats.misses == 1
        assert hierarchy.dl1.occupancy() == 0.0

    def test_instruction_and_data_paths_are_separate(self):
        hierarchy = small_hierarchy()
        hierarchy.fetch(0x1000)
        hierarchy.load(0x1000)
        assert hierarchy.il1.stats.accesses == 1
        assert hierarchy.dl1.stats.accesses == 1


class TestStatsAndReseed:
    def test_stats_structure(self):
        hierarchy = small_hierarchy()
        hierarchy.fetch(0x0)
        hierarchy.load(0x40)
        stats = hierarchy.stats()
        assert set(stats) == {"il1", "dl1", "l2", "totals"}
        assert stats["totals"]["cycles"] == hierarchy.cycles

    def test_reset_stats(self):
        hierarchy = small_hierarchy()
        hierarchy.fetch(0x0)
        hierarchy.reset_stats()
        assert hierarchy.cycles == 0
        assert hierarchy.il1.stats.accesses == 0

    def test_reseed_flushes_all_levels(self):
        hierarchy = small_hierarchy(l1_placement="rm", l1_replacement="random")
        hierarchy.fetch(0x0)
        hierarchy.load(0x40)
        hierarchy.reseed(99)
        assert hierarchy.il1.occupancy() == 0.0
        assert hierarchy.dl1.occupancy() == 0.0
        assert hierarchy.l2.occupancy() == 0.0

    def test_same_seed_reproduces_exact_behaviour(self):
        results = []
        for _ in range(2):
            hierarchy = small_hierarchy(l1_placement="rm", l1_replacement="random")
            hierarchy.reseed(1234)
            total = 0
            for address in range(0, 4096, 32):
                total += hierarchy.fetch(address)
                total += hierarchy.load(address + 0x10000)
            results.append(total)
        assert results[0] == results[1]


class TestLeon3Factory:
    def test_default_geometry_matches_paper(self):
        config = leon3_hierarchy()
        assert config.il1.size_bytes == 16 * 1024
        assert config.il1.ways == 4
        assert config.il1.num_sets == 128
        assert config.l2.size_bytes == 128 * 1024
        assert config.l2.num_sets == 1024

    def test_rm_setup_places_rm_in_l1_and_hrp_in_l2(self):
        config = leon3_hierarchy(l1_placement="rm", l2_placement="hrp")
        assert config.il1.placement == "rm"
        assert config.dl1.placement == "rm"
        assert config.l2.placement == "hrp"

    def test_l1s_are_write_through_l2_write_back(self):
        config = leon3_hierarchy()
        assert config.il1.write_policy == "write-through"
        assert config.l2.write_policy == "write-back"

    def test_describe_summarises_sizes(self):
        description = leon3_hierarchy().describe()
        assert description["il1"].startswith("16KB/4w")
        assert "l2" in description
