"""Tests for the TISA program builders in repro.workloads.programs."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cpu.interpreter import run_program
from repro.platform.leon3 import platform_setup
from repro.workloads.base import MemoryLayout
from repro.workloads.programs import (
    matrix_multiply_program,
    pointer_chase_memory,
    pointer_chase_program,
    table_lookup_program,
    vector_traversal_program,
)


class TestVectorTraversal:
    def test_sums_vector_repeatedly(self):
        footprint, iterations = 512, 3
        layout = MemoryLayout()
        memory = {layout.data_base + offset: 2 for offset in range(0, footprint, 32)}
        program = vector_traversal_program(footprint, iterations=iterations, layout=layout)
        result = run_program(program, initial_memory=memory)
        assert result.register(5) == 2 * (footprint // 32) * iterations

    def test_trace_matches_generator_footprint(self):
        footprint = 2048
        program = vector_traversal_program(footprint, iterations=1)
        result = run_program(program, record_trace=True)
        data_lines = result.trace.split_by_kind(32)[1]
        assert len(data_lines) == footprint // 32

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            vector_traversal_program(0)
        with pytest.raises(ValueError):
            vector_traversal_program(1024, iterations=0)


class TestTableLookup:
    def test_runs_and_touches_table(self):
        program = table_lookup_program(table_bytes=1024, lookups=64)
        result = run_program(program, record_trace=True)
        assert result.trace.counts()["loads"] == 64
        assert result.halted

    def test_checksum_matches_python_model(self):
        table_bytes, lookups, multiplier = 1024, 50, 13
        layout = MemoryLayout()
        words = table_bytes // 4
        memory = {layout.data_base + 4 * i: i for i in range(words)}
        program = table_lookup_program(table_bytes, lookups, multiplier, layout)
        result = run_program(program, initial_memory=memory)
        index, expected = 1, 0
        for _ in range(lookups):
            index = (index * multiplier) & (words - 1)
            expected += index
            index += 1
        assert result.register(5) == expected

    def test_rejects_non_power_of_two_table(self):
        with pytest.raises(ValueError):
            table_lookup_program(table_bytes=1000)


class TestMatrixMultiply:
    def test_small_matmul_is_correct(self):
        dimension = 4
        layout = MemoryLayout()
        words = dimension * dimension
        a = [[(row + column) % 5 for column in range(dimension)] for row in range(dimension)]
        b = [[(row * column + 1) % 7 for column in range(dimension)] for row in range(dimension)]
        memory = {}
        for row in range(dimension):
            for column in range(dimension):
                memory[layout.data_base + 4 * (row * dimension + column)] = a[row][column]
                memory[layout.data_base + 4 * (words + row * dimension + column)] = b[row][column]
        program = matrix_multiply_program(dimension, layout=layout)
        result = run_program(program, initial_memory=memory)
        c_base = layout.data_base + 8 * words
        for row in range(dimension):
            for column in range(dimension):
                expected = sum(a[row][k] * b[k][column] for k in range(dimension))
                assert result.memory[c_base + 4 * (row * dimension + column)] == expected

    def test_executes_on_hierarchy(self):
        program = matrix_multiply_program(6)
        hierarchy = CacheHierarchy(platform_setup("rm"), seed=3)
        result = run_program(program, hierarchy=hierarchy)
        assert result.cycles > result.instructions  # memory latencies were paid

    def test_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            matrix_multiply_program(0)


class TestPointerChase:
    def test_chase_visits_cycle(self):
        layout = MemoryLayout()
        memory = pointer_chase_memory(nodes=16, stride_nodes=5, layout=layout)
        program = pointer_chase_program(nodes=16, hops=32, layout=layout)
        result = run_program(program, initial_memory=memory, record_trace=True)
        assert result.register(5) == 32  # the accumulator counts every hop
        assert result.trace.counts()["loads"] == 32

    def test_memory_image_is_a_single_cycle(self):
        layout = MemoryLayout()
        memory = pointer_chase_memory(nodes=8, stride_nodes=3, layout=layout)
        cursor, visited = layout.data_base, set()
        for _ in range(8):
            assert cursor not in visited
            visited.add(cursor)
            cursor = memory[cursor]
        assert cursor == layout.data_base

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            pointer_chase_program(0, 1)
        with pytest.raises(ValueError):
            pointer_chase_memory(0)
