"""Tests for the hardware-style PRNGs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.prng import GaloisLfsr, MultiLfsrPrng, SplitMix64, derive_run_seeds


class TestGaloisLfsr:
    def test_zero_seed_is_sanitised(self):
        lfsr = GaloisLfsr(31, 0x48000000, seed=0)
        assert lfsr.state != 0

    def test_state_stays_in_range(self):
        lfsr = GaloisLfsr(8, 0xB8, seed=0x5A)
        for _ in range(300):
            lfsr.next_bit()
            assert 0 < lfsr.state <= 0xFF

    def test_sequence_is_deterministic_per_seed(self):
        a = GaloisLfsr(31, 0x48000000, seed=123)
        b = GaloisLfsr(31, 0x48000000, seed=123)
        assert [a.next_bit() for _ in range(64)] == [b.next_bit() for _ in range(64)]

    def test_different_seeds_differ(self):
        a = GaloisLfsr(31, 0x48000000, seed=123)
        b = GaloisLfsr(31, 0x48000000, seed=456)
        assert [a.next_bit() for _ in range(64)] != [b.next_bit() for _ in range(64)]

    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            GaloisLfsr(1, 1)

    def test_rejects_zero_taps(self):
        with pytest.raises(ValueError):
            GaloisLfsr(8, 0)

    def test_next_bits_packs_lsb_first(self):
        lfsr = GaloisLfsr(8, 0xB8, seed=1)
        reference = GaloisLfsr(8, 0xB8, seed=1)
        bits = [reference.next_bit() for _ in range(8)]
        assert lfsr.next_bits(8) == sum(bit << i for i, bit in enumerate(bits))


class TestMultiLfsrPrng:
    def test_reproducible(self):
        a = MultiLfsrPrng(seed=99)
        b = MultiLfsrPrng(seed=99)
        assert [a.next_uint32() for _ in range(8)] == [b.next_uint32() for _ in range(8)]

    def test_reseed_changes_stream(self):
        prng = MultiLfsrPrng(seed=1)
        first = [prng.next_uint32() for _ in range(4)]
        prng.reseed(2)
        second = [prng.next_uint32() for _ in range(4)]
        assert first != second

    def test_bit_balance_is_reasonable(self):
        prng = MultiLfsrPrng(seed=7)
        ones = sum(prng.next_bit() for _ in range(4000))
        assert 1700 < ones < 2300

    def test_next_below_respects_bound(self):
        prng = MultiLfsrPrng(seed=3)
        values = [prng.next_below(10) for _ in range(200)]
        assert all(0 <= value < 10 for value in values)
        assert len(set(values)) > 5

    def test_next_below_rejects_non_positive(self):
        with pytest.raises(ValueError):
            MultiLfsrPrng(seed=1).next_below(0)

    def test_unknown_width_rejected(self):
        with pytest.raises(ValueError):
            MultiLfsrPrng(widths=(31, 33))


class TestSplitMix64:
    def test_known_sequence_is_stable(self):
        rng = SplitMix64(0)
        first = rng.next_uint64()
        rng2 = SplitMix64(0)
        assert rng2.next_uint64() == first

    def test_values_fit_64_bits(self):
        rng = SplitMix64(42)
        for _ in range(100):
            assert 0 <= rng.next_uint64() < 2**64

    def test_next_below_uniform_coverage(self):
        rng = SplitMix64(5)
        seen = {rng.next_below(8) for _ in range(200)}
        assert seen == set(range(8))

    def test_next_below_rejects_non_positive(self):
        with pytest.raises(ValueError):
            SplitMix64(1).next_below(0)

    @given(seed=st.integers(0, 2**64 - 1))
    def test_deterministic_for_any_seed(self, seed):
        assert SplitMix64(seed).next_uint64() == SplitMix64(seed).next_uint64()


class TestDeriveRunSeeds:
    def test_count_and_determinism(self):
        seeds = derive_run_seeds(123, 50)
        assert len(seeds) == 50
        assert seeds == derive_run_seeds(123, 50)

    def test_all_distinct(self):
        seeds = derive_run_seeds(7, 1000)
        assert len(set(seeds)) == 1000

    def test_different_master_seeds_differ(self):
        assert derive_run_seeds(1, 10) != derive_run_seeds(2, 10)

    def test_zero_count(self):
        assert derive_run_seeds(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            derive_run_seeds(1, -1)
