"""Tests for measurement campaigns and the HWM industrial baseline."""

import pytest

from repro.analysis.campaign import run_campaign, run_layout_campaign
from repro.analysis.hwm import HwmBound, high_water_mark, industrial_bound
from repro.cpu.core import ExecutionTimingModel
from repro.platform.leon3 import platform_setup
from repro.workloads.base import MemoryLayout, random_layouts
from repro.workloads.eembc import eembc_trace


class TestRunCampaign:
    def test_collects_requested_runs(self, small_kernel_trace, tiny_hierarchy_config):
        campaign = run_campaign(
            small_kernel_trace, tiny_hierarchy_config, runs=25, master_seed=1
        )
        assert campaign.runs == 25
        assert campaign.minimum <= campaign.mean <= campaign.high_water_mark

    def test_reproducible_for_same_master_seed(self, small_kernel_trace, tiny_hierarchy_config):
        a = run_campaign(small_kernel_trace, tiny_hierarchy_config, runs=15, master_seed=3)
        b = run_campaign(small_kernel_trace, tiny_hierarchy_config, runs=15, master_seed=3)
        assert a.execution_times == b.execution_times

    def test_different_master_seeds_differ(self, small_kernel_trace, tiny_hierarchy_config):
        a = run_campaign(small_kernel_trace, tiny_hierarchy_config, runs=25, master_seed=3)
        b = run_campaign(small_kernel_trace, tiny_hierarchy_config, runs=25, master_seed=4)
        assert a.execution_times != b.execution_times

    def test_engines_agree(self, small_kernel_trace, tiny_hierarchy_config):
        fast = run_campaign(
            small_kernel_trace, tiny_hierarchy_config, runs=5, master_seed=9, engine="fast"
        )
        reference = run_campaign(
            small_kernel_trace, tiny_hierarchy_config, runs=5, master_seed=9, engine="reference"
        )
        assert fast.execution_times == reference.execution_times

    def test_keep_run_results_enables_miss_summary(self, small_kernel_trace, tiny_hierarchy_config):
        campaign = run_campaign(
            small_kernel_trace,
            tiny_hierarchy_config,
            runs=5,
            master_seed=1,
            keep_run_results=True,
        )
        summary = campaign.miss_summary()
        assert summary["il1_misses"] > 0
        assert campaign.miss_summary() != {}

    def test_without_run_results_miss_summary_is_empty(self, small_kernel_trace, tiny_hierarchy_config):
        campaign = run_campaign(small_kernel_trace, tiny_hierarchy_config, runs=3, master_seed=1)
        assert campaign.miss_summary() == {}

    def test_timing_overhead_raises_cycle_counts(self, small_kernel_trace, tiny_hierarchy_config):
        plain = run_campaign(small_kernel_trace, tiny_hierarchy_config, runs=3, master_seed=1)
        overhead = run_campaign(
            small_kernel_trace,
            tiny_hierarchy_config,
            runs=3,
            master_seed=1,
            timing=ExecutionTimingModel(fetch_overhead=1, data_overhead=1),
        )
        assert all(o > p for o, p in zip(overhead.execution_times, plain.execution_times))

    def test_rejects_zero_runs(self, small_kernel_trace, tiny_hierarchy_config):
        with pytest.raises(ValueError):
            run_campaign(small_kernel_trace, tiny_hierarchy_config, runs=0)

    def test_randomised_setup_shows_variability(self, small_kernel_trace, tiny_hierarchy_config):
        campaign = run_campaign(small_kernel_trace, tiny_hierarchy_config, runs=30, master_seed=2)
        assert len(set(campaign.execution_times)) > 1


class TestLayoutCampaign:
    def test_layout_variation_on_deterministic_platform(self):
        config = platform_setup("modulo")
        campaign = run_layout_campaign(
            lambda layout: eembc_trace("rspeed", layout=layout, scale=0.25),
            config,
            runs=8,
            master_seed=5,
        )
        assert campaign.runs == 8
        assert campaign.setup == "deterministic"

    def test_explicit_layouts(self):
        config = platform_setup("modulo")
        layouts = [MemoryLayout(), MemoryLayout().shifted(data_shift=0x40)]
        campaign = run_layout_campaign(
            lambda layout: eembc_trace("rspeed", layout=layout, scale=0.25),
            config,
            runs=2,
            layouts=layouts,
        )
        assert campaign.runs == 2

    def test_reproducible(self):
        config = platform_setup("modulo")
        build = lambda layout: eembc_trace("rspeed", layout=layout, scale=0.25)
        a = run_layout_campaign(build, config, runs=6, master_seed=7)
        b = run_layout_campaign(build, config, runs=6, master_seed=7)
        assert a.execution_times == b.execution_times


class TestHwm:
    def test_high_water_mark(self):
        assert high_water_mark([3.0, 9.0, 4.0]) == 9.0

    def test_high_water_mark_rejects_empty(self):
        with pytest.raises(ValueError):
            high_water_mark([])

    def test_industrial_bound_adds_margin(self):
        bound = industrial_bound([100.0, 110.0])
        assert bound.hwm == 110.0
        assert bound.bound == pytest.approx(132.0)

    def test_pwcet_ratio_and_margin_check(self):
        bound = HwmBound(hwm=100.0, margin=0.2)
        assert bound.pwcet_ratio(107.0) == pytest.approx(1.07)
        assert bound.within_margin(119.0)
        assert not bound.within_margin(121.0)

    def test_rejects_negative_margin(self):
        with pytest.raises(ValueError):
            industrial_bound([1.0], margin=-0.1)

    def test_ratio_rejects_non_positive_hwm(self):
        with pytest.raises(ValueError):
            HwmBound(hwm=0.0, margin=0.2).pwcet_ratio(1.0)
