"""Tests for the plain-text reporting helpers."""

import pytest

from repro.analysis.report import format_ccdf, format_histogram, format_ratio, format_table


class TestFormatTable:
    def test_alignment_and_content(self):
        table = format_table(["name", "value"], [("alpha", 1), ("b", 123456.0)])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "alpha" in table
        assert "123,456" in table

    def test_title(self):
        assert format_table(["a"], [(1,)], title="My table").splitlines()[0] == "My table"

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "b" in table

    def test_float_formatting(self):
        table = format_table(["x"], [(0.1234567,)])
        assert "0.123" in table


class TestFormatHistogram:
    def test_basic_histogram(self):
        text = format_histogram([1, 1, 2, 2, 2, 10], bins=3, title="demo")
        assert text.startswith("demo")
        assert "#" in text

    def test_constant_sample(self):
        text = format_histogram([5.0] * 10)
        assert "equal" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            format_histogram([])


class TestFormatCcdfAndRatio:
    def test_ccdf_table(self):
        text = format_ccdf([(1000.0, 0.5), (2000.0, 1e-6)], title="curve")
        assert "curve" in text
        assert "1e-06" in text or "1e-6" in text

    def test_ratio_formatting(self):
        assert format_ratio(0.57) == "-43.0%"
        assert format_ratio(1.07) == "+7.0%"
