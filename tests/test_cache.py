"""Tests for the reference set-associative cache model."""

import pytest

from repro.cache.cache import CacheConfig, SetAssociativeCache


def make_cache(**overrides):
    config = CacheConfig(
        name="L1",
        size_bytes=overrides.pop("size_bytes", 1024),
        ways=overrides.pop("ways", 2),
        line_size=overrides.pop("line_size", 32),
        placement=overrides.pop("placement", "modulo"),
        replacement=overrides.pop("replacement", "lru"),
        write_policy=overrides.pop("write_policy", "write-through"),
    )
    return SetAssociativeCache(config, seed=overrides.pop("seed", 0))


class TestConfig:
    def test_num_sets(self):
        assert CacheConfig(size_bytes=16 * 1024, ways=4, line_size=32).num_sets == 128

    def test_way_size_is_segment_size(self):
        config = CacheConfig(size_bytes=16 * 1024, ways=4, line_size=32)
        assert config.way_size == 4096
        assert config.geometry.segment_size == 4096

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, ways=3, line_size=32)

    def test_rejects_bad_write_policy(self):
        with pytest.raises(ValueError):
            CacheConfig(write_policy="write-around")

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            CacheConfig(ways=0)


class TestBasicBehaviour:
    def test_first_access_misses_then_hits(self):
        cache = make_cache()
        assert not cache.access(0x1000).hit
        assert cache.access(0x1000).hit

    def test_same_line_different_offsets_hit(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.access(0x101F).hit
        assert not cache.access(0x1020).hit

    def test_stats_consistency(self):
        cache = make_cache()
        addresses = [0x0, 0x20, 0x40, 0x0, 0x20, 0x1000, 0x0]
        for address in addresses:
            cache.access(address)
        stats = cache.stats
        assert stats.accesses == len(addresses)
        assert stats.hits + stats.misses == stats.accesses
        assert stats.read_accesses == stats.accesses

    def test_lookup_does_not_modify_state(self):
        cache = make_cache()
        cache.access(0x40)
        hits_before = cache.stats.hits
        assert cache.lookup(0x40)
        assert not cache.lookup(0x80)
        assert cache.stats.hits == hits_before

    def test_flush_invalidates_everything(self):
        cache = make_cache()
        cache.access(0x40)
        cache.flush()
        assert not cache.access(0x40).hit
        assert cache.resident_lines() == [0x40]

    def test_occupancy(self):
        cache = make_cache()
        assert cache.occupancy() == 0.0
        cache.access(0x0)
        assert cache.occupancy() == pytest.approx(1 / 32)


class TestEvictionAndLru:
    def test_conflict_eviction_with_lru(self):
        cache = make_cache()  # 1 KB, 2 ways, 32 B lines -> 16 sets, 512 B way
        way_span = 16 * 32
        a, b, c = 0x0, way_span, 2 * way_span  # all map to set 0
        cache.access(a)
        cache.access(b)
        cache.access(a)          # a is MRU, b is LRU
        outcome = cache.access(c)
        assert not outcome.hit
        assert outcome.victim_address == b
        assert cache.access(a).hit
        assert not cache.access(b).hit

    def test_set_contents_reports_lines(self):
        cache = make_cache()
        cache.access(0x0)
        cache.access(0x20)
        assert cache.set_contents(0) == [0x0, None]
        assert cache.set_contents(1) == [0x20, None]


class TestWritePolicies:
    def test_write_through_store_miss_does_not_allocate(self):
        cache = make_cache(write_policy="write-through")
        outcome = cache.access(0x100, is_write=True)
        assert not outcome.hit and not outcome.allocated
        assert not cache.access(0x100).hit  # still a miss: nothing was installed

    def test_write_through_never_writes_back(self):
        cache = make_cache(write_policy="write-through")
        way_span = 16 * 32
        cache.access(0x0)
        cache.access(0x0, is_write=True)
        cache.access(way_span)
        outcome = cache.access(2 * way_span)
        assert outcome.writeback is False
        assert cache.stats.writebacks == 0

    def test_write_back_store_miss_allocates_dirty(self):
        cache = make_cache(write_policy="write-back")
        outcome = cache.access(0x100, is_write=True)
        assert not outcome.hit and outcome.allocated
        assert cache.access(0x100).hit

    def test_write_back_eviction_of_dirty_line_reports_writeback(self):
        cache = make_cache(write_policy="write-back")
        way_span = 16 * 32
        cache.access(0x0, is_write=True)
        cache.access(way_span)
        outcome = cache.access(2 * way_span)
        assert not outcome.hit
        assert outcome.writeback
        assert outcome.victim_address == 0x0
        assert cache.stats.writebacks == 1

    def test_clean_eviction_is_not_a_writeback(self):
        cache = make_cache(write_policy="write-back")
        way_span = 16 * 32
        cache.access(0x0)
        cache.access(way_span)
        outcome = cache.access(2 * way_span)
        assert outcome.writeback is False


class TestReseed:
    def test_reseed_flushes_contents(self):
        cache = make_cache(placement="rm", replacement="random", seed=1)
        cache.access(0x200)
        cache.reseed(2)
        assert not cache.access(0x200).hit

    def test_reseed_changes_random_mapping(self):
        cache = make_cache(placement="rm", replacement="random", seed=1)
        # Use an address whose modulo index has a mix of 0 and 1 bits: RM
        # permutes the index bits, so the all-zeros index is a fixed point.
        address = 0x4000_00C0
        seen = {cache.placement.set_index(address)}
        for seed in range(2, 40):
            cache.reseed(seed)
            seen.add(cache.placement.set_index(address))
        assert len(seen) > 1

    def test_stats_survive_reseed_until_reset(self):
        cache = make_cache(placement="rm", replacement="random", seed=1)
        cache.access(0x200)
        cache.reseed(3)
        assert cache.stats.accesses == 1
        cache.reset_stats()
        assert cache.stats.accesses == 0


class TestInvariants:
    def test_no_duplicate_lines_within_a_set(self):
        cache = make_cache(placement="rm", replacement="random", seed=7)
        addresses = [i * 32 for i in range(200)] * 3
        for address in addresses:
            cache.access(address)
        for set_index in range(cache.config.num_sets):
            contents = [line for line in cache.set_contents(set_index) if line is not None]
            assert len(contents) == len(set(contents))

    def test_fills_equal_misses_for_read_only_traffic(self):
        cache = make_cache()
        for address in [i * 32 for i in range(100)]:
            cache.access(address)
        assert cache.stats.fills == cache.stats.misses
