"""Tests for the MBPTA protocol wrapper."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.mbpta.protocol import MbptaConfig, apply_mbpta


def gumbel_sample(n, seed=0, loc=20000.0, scale=300.0):
    rng = np.random.default_rng(seed)
    return list(scipy_stats.gumbel_r.rvs(loc=loc, scale=scale, size=n, random_state=rng))


class TestConfig:
    def test_defaults(self):
        config = MbptaConfig()
        assert config.block_size == 20
        assert 1e-15 in config.exceedance_probabilities

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            MbptaConfig(block_size=0)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            MbptaConfig(exceedance_probabilities=(2.0,))


class TestApplyMbpta:
    def test_end_to_end_on_iid_sample(self):
        samples = gumbel_sample(600, seed=1)
        result = apply_mbpta(samples)
        assert result.iid_passed
        assert result.pwcet[1e-15] > result.pwcet[1e-12] > max(samples) * 0.9
        assert result.high_water_mark == max(samples)
        assert result.mean == pytest.approx(np.mean(samples))

    def test_pwcet_exceeds_all_observations(self):
        samples = gumbel_sample(400, seed=2)
        result = apply_mbpta(samples)
        assert result.pwcet_at(1e-15) > max(samples)

    def test_degenerate_sample_pwcet_equals_observation(self):
        result = apply_mbpta([12345.0] * 100)
        assert result.pwcet_at(1e-15) == pytest.approx(12345.0, rel=1e-6)
        assert result.iid_passed

    def test_block_size_is_capped_for_small_samples(self):
        result = apply_mbpta(gumbel_sample(40, seed=3), config=MbptaConfig(block_size=50))
        assert result.curve.block_size <= 4

    def test_require_iid_raises_on_trending_sample(self):
        trending = list(np.linspace(0.0, 1000.0, 300))
        with pytest.raises(ValueError):
            apply_mbpta(trending, require_iid=True)

    def test_non_iid_sample_still_produces_result_by_default(self):
        trending = list(np.linspace(0.0, 1000.0, 300))
        result = apply_mbpta(trending)
        assert not result.iid_passed
        assert result.pwcet_at(1e-12) > 1000.0

    def test_rejects_tiny_sample(self):
        with pytest.raises(ValueError):
            apply_mbpta([1.0] * 10)

    def test_summary_contains_expected_keys(self):
        result = apply_mbpta(gumbel_sample(200, seed=4))
        summary = result.summary()
        for key in ("runs", "mean", "hwm", "ww_statistic", "ks_p_value", "gumbel_scale"):
            assert key in summary
        assert any(key.startswith("pwcet@") for key in summary)

    def test_custom_cutoffs(self):
        config = MbptaConfig(exceedance_probabilities=(1e-6, 1e-9))
        result = apply_mbpta(gumbel_sample(200, seed=5), config=config)
        assert set(result.pwcet) == {1e-6, 1e-9}

    def test_mle_fit_method(self):
        config = MbptaConfig(fit_method="mle")
        result = apply_mbpta(gumbel_sample(300, seed=6), config=config)
        assert result.fit.method == "mle"
        assert result.pwcet_at(1e-12) > result.high_water_mark


class TestDiscardedRuns:
    """block_maxima drops a trailing partial block; the result reports it."""

    def test_non_multiple_sample_reports_discard(self):
        # 25 runs with an effective block size of min(20, 25 // 10) = 2:
        # 12 blocks cover 24 runs, one run is dropped.
        result = apply_mbpta(gumbel_sample(25, seed=7))
        assert result.curve.block_size == 2
        assert result.discarded_runs == 1
        assert result.summary()["discarded_runs"] == 1.0

    def test_multiple_sample_discards_nothing(self):
        result = apply_mbpta(gumbel_sample(300, seed=8))
        assert result.curve.block_size == 20
        assert result.discarded_runs == 0

    def test_block_size_one_discards_nothing(self):
        result = apply_mbpta(gumbel_sample(23, seed=9), config=MbptaConfig(block_size=1))
        assert result.curve.block_size == 1
        assert result.discarded_runs == 0


class TestBootstrapIntervals:
    def test_disabled_by_default(self):
        result = apply_mbpta(gumbel_sample(100, seed=10))
        assert result.pwcet_ci == {}

    def test_intervals_bracket_reasonably(self):
        config = MbptaConfig(bootstrap=60)
        result = apply_mbpta(gumbel_sample(400, seed=11), config=config)
        assert set(result.pwcet_ci) == set(config.exceedance_probabilities)
        for probability, (low, high) in result.pwcet_ci.items():
            assert low <= high
            # The interval is around the point estimate's order of magnitude.
            assert low < result.pwcet[probability] * 1.5
            assert high > result.pwcet[probability] * 0.5
        summary = result.summary()
        assert "pwcet@1e-15_ci_low" in summary
        assert "pwcet@1e-15_ci_high" in summary
