"""Tests for the TISA functional/timing interpreter."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cpu.assembler import assemble
from repro.cpu.interpreter import CoreTimings, run_program
from repro.cpu.trace import AccessKind
from repro.platform.leon3 import platform_setup


class TestFunctionalBehaviour:
    def test_arithmetic(self):
        program = assemble(
            """
            li  r1, 6
            li  r2, 7
            mul r3, r1, r2
            add r4, r3, r1
            halt
            """
        )
        result = run_program(program)
        assert result.register(3) == 42
        assert result.register(4) == 48

    def test_r0_is_hardwired_to_zero(self):
        program = assemble("li r0, 99\nadd r1, r0, r0\nhalt")
        result = run_program(program)
        assert result.register(0) == 0
        assert result.register(1) == 0

    def test_memory_roundtrip(self):
        program = assemble(
            """
            li r1, 0x40100000
            li r2, 1234
            st r2, r1, 0
            ld r3, r1, 0
            halt
            """
        )
        result = run_program(program)
        assert result.register(3) == 1234
        assert result.memory[0x40100000] == 1234

    def test_loop_sums_correctly(self):
        program = assemble(
            """
                li   r1, 0        ; acc
                li   r2, 10       ; n
            loop:
                add  r1, r1, r2
                addi r2, r2, -1
                bne  r2, r0, loop
                halt
            """
        )
        result = run_program(program)
        assert result.register(1) == sum(range(1, 11))

    def test_signed_comparison(self):
        program = assemble(
            """
                li   r1, -3
                li   r2, 2
                blt  r1, r2, ok
                li   r3, 0
                halt
            ok: li   r3, 1
                halt
            """
        )
        assert run_program(program).register(3) == 1

    def test_initial_registers_and_memory(self):
        program = assemble("ld r2, r1, 0\nhalt")
        result = run_program(
            program,
            initial_registers={1: 0x40100040},
            initial_memory={0x40100040: 77},
        )
        assert result.register(2) == 77

    def test_runaway_program_is_stopped(self):
        program = assemble("loop: jmp loop\nhalt")
        with pytest.raises(RuntimeError):
            run_program(program, max_instructions=1000)


class TestTimingBehaviour:
    def test_cycles_increase_with_hierarchy(self):
        program = assemble("li r1, 1\nli r2, 2\nadd r3, r1, r2\nhalt")
        bare = run_program(program)
        with_caches = run_program(program, hierarchy=CacheHierarchy(platform_setup("rm"), seed=1))
        assert with_caches.cycles > bare.cycles

    def test_mul_costs_more_than_add(self):
        adds = assemble("add r3, r1, r2\nhalt")
        muls = assemble("mul r3, r1, r2\nhalt")
        assert run_program(muls).cycles > run_program(adds).cycles

    def test_taken_branch_penalty(self):
        taken = assemble("li r1, 1\nbeq r0, r0, skip\nskip: halt")
        not_taken = assemble("li r1, 1\nbne r0, r0, skip\nskip: halt")
        timings = CoreTimings()
        assert (
            run_program(taken).cycles - run_program(not_taken).cycles
            == timings.taken_branch_penalty
        )

    def test_instruction_count(self):
        program = assemble("nop\nnop\nnop\nhalt")
        assert run_program(program).instructions == 4


class TestTraceRecording:
    def test_trace_contains_fetches_and_data_accesses(self):
        program = assemble(
            """
            li r1, 0x40100000
            ld r2, r1, 0
            st r2, r1, 4
            halt
            """
        )
        result = run_program(program, record_trace=True)
        counts = result.trace.counts()
        assert counts["fetches"] == result.instructions
        assert counts["loads"] == 1
        assert counts["stores"] == 1

    def test_trace_addresses_match_code_and_data(self):
        program = assemble("li r1, 0x40100000\nld r2, r1, 0\nhalt")
        result = run_program(program, record_trace=True)
        fetches = [a for a in result.trace if a.kind == AccessKind.FETCH]
        assert fetches[0].address == program.code_base
        loads = [a for a in result.trace if a.kind == AccessKind.LOAD]
        assert loads[0].address == 0x40100000

    def test_recorded_trace_replays_to_same_cycles(self):
        from repro.cpu.core import TraceDrivenCore

        program = assemble(
            """
                li   r1, 0x40100000
                li   r2, 64
            loop:
                ld   r3, r1, 0
                addi r1, r1, 32
                addi r2, r2, -1
                bne  r2, r0, loop
                halt
            """
        )
        config = platform_setup("rm")
        hierarchy = CacheHierarchy(config, seed=77)
        execution = run_program(program, hierarchy=hierarchy, record_trace=True)
        # Replaying the recorded memory accesses must reproduce the memory
        # cycles exactly (the execute-stage cycles are added on top).
        replay = TraceDrivenCore(config, execution.trace).run_reference(77)
        assert replay.cycles == hierarchy.cycles
