"""The repro.service subsystem: HTTP API, job manager, events, GC.

The invariants under test:

* the server executes jobs through the exact store + exec-queue pipeline
  the CLI uses, so **responses are byte-identical to the CLI path** for
  the same specs (analysis payloads compare equal as canonical JSON);
* concurrent clients submitting overlapping sweeps deduplicate by spec
  hash — the overlap resolves warm with **zero simulations and zero EVT
  fits**;
* a SIGKILLed external worker does not lose a job: its dead lease is
  reclaimed and the job completes (the exec queue's crash story, observed
  end to end through the API).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import replace
from pathlib import Path

import pytest

import repro
import repro.pwcet.registry as pwcet_registry
from repro.__main__ import main
from repro.analysis.experiments import ExperimentSettings
from repro.exec import FileQueue, plan_shards, read_heartbeats, shard_task
from repro.exec.status import exec_status_snapshot
from repro.pwcet import MbptaConfig
from repro.service.api.server import ReproServer
from repro.service.client import ServiceClient, ServiceError
from repro.service.services.events import EventBus, GLOBAL_CHANNEL
from repro.service.services.gc import GcService
from repro.service.services.jobs import BadRequest, JobManager, parse_job_request
from repro.study import get_study
from repro.study.scenario import HierarchySpec, Scenario, WorkloadSpec
from repro.study.store import ResultStore

#: The studies' analysis cutoffs (secondary, primary) — what `submit` sends.
CUTOFFS = (1e-12, 1e-15)


def _scenario(
    runs: int = 24, master_seed: int = 77, setup: str = "rm", label: str = ""
) -> Scenario:
    """A small synthetic-kernel scenario, large enough for MBPTA (>= 20)."""
    return Scenario(
        workload=WorkloadSpec.synthetic(4 * 1024, 2),
        hierarchy=HierarchySpec(setup=setup, with_l2=False),
        runs=runs,
        master_seed=master_seed,
        label=label,
    )


def _spec(scenario: Scenario) -> dict:
    return scenario.spec_dict()


class _FitCounter:
    """Wraps every registered estimator to count fit/fit_batch calls."""

    def __init__(self, monkeypatch):
        self.calls = 0
        for estimator in pwcet_registry._REGISTRY.values():
            for method_name in ("fit", "fit_batch"):
                original = getattr(estimator.__class__, method_name)
                monkeypatch.setattr(
                    estimator.__class__,
                    method_name,
                    self._wrap(original),
                    raising=True,
                )

    def _wrap(self, original):
        counter = self

        def wrapped(estimator_self, *args, **kwargs):
            counter.calls += 1
            return original(estimator_self, *args, **kwargs)

        return wrapped


@pytest.fixture
def start_server():
    """Factory starting in-process servers on ephemeral ports.

    Yields ``start(store, **kwargs) -> (server, client)``; every started
    server is shut down (and its thread joined) at teardown.
    """
    started = []

    def start(store: ResultStore, **kwargs) -> tuple:
        kwargs.setdefault("gc_interval", 0)
        kwargs.setdefault("watch_interval", 0.05)
        server = ReproServer(store, port=0, **kwargs)
        thread = threading.Thread(
            target=server.run, kwargs={"quiet": True}, daemon=True
        )
        thread.start()
        assert server.ready.wait(10), "server did not come up"
        client = ServiceClient(f"http://127.0.0.1:{server.bound_port}", timeout=60)
        started.append((server, thread, client))
        return server, client

    yield start
    for server, thread, client in started:
        try:
            client.shutdown()
        except ServiceError:
            pass  # already stopped by the test
        thread.join(60)
        assert not thread.is_alive(), "server thread did not shut down"


# ---------------------------------------------------------------------------
# Request parsing (no server needed)
# ---------------------------------------------------------------------------

class TestJobRequestParsing:
    def test_single_spec_round_trips_hash(self):
        scenario = _scenario()
        scenarios, _ = parse_job_request({"spec": _spec(scenario)})
        assert [s.spec_hash() for s in scenarios] == [scenario.spec_hash()]

    def test_overlapping_specs_collapse_to_one_unit_of_work(self):
        scenario = _scenario()
        scenarios, _ = parse_job_request(
            {"specs": [_spec(scenario), _spec(scenario)]}
        )
        assert len(scenarios) == 1

    def test_label_collisions_get_unique_suffixes(self):
        # Distinct hashes, identical default labels (same workload/setup,
        # different seeds) — the result set needs unique labels.
        specs = [_spec(_scenario(master_seed=seed)) for seed in (1, 2, 3)]
        scenarios, _ = parse_job_request({"specs": specs})
        labels = [s.display_label for s in scenarios]
        assert len(set(labels)) == 3

    def test_cutoffs_and_estimator_land_in_the_analysis_config(self):
        scenarios, _ = parse_job_request(
            {
                "spec": _spec(_scenario()),
                "cutoffs": list(CUTOFFS),
                "estimator": "gumbel-mle",
            }
        )
        config = scenarios[0].mbpta
        assert config.exceedance_probabilities == CUTOFFS
        assert config.fit_method == "gumbel-mle"

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"spec": {}, "specs": []},
            {"specs": []},
            {"specs": ["not-a-spec"]},
            {"spec": {"version": 99}},
            {"spec": 12},
            {"specs": "nope"},
        ],
    )
    def test_malformed_requests_are_rejected(self, payload):
        with pytest.raises(BadRequest):
            parse_job_request(payload)

    @pytest.mark.parametrize(
        "options",
        [
            {"estimator": "no-such-estimator"},
            {"cutoffs": []},
            {"cutoffs": [2.0]},
            {"cutoffs": ["x"]},
            {"shard_size": 0},
            {"shard_size": "many"},
            {"jobs": -1},
            {"jobs": "abc"},
            {"jobs": [2]},
            {"engine": "no-such-engine"},
        ],
    )
    def test_bad_options_are_rejected(self, options):
        with pytest.raises(BadRequest):
            parse_job_request({"spec": _spec(_scenario()), **options})


# ---------------------------------------------------------------------------
# Event bus
# ---------------------------------------------------------------------------

class TestEventBus:
    def test_thread_publish_reaches_loop_subscriber(self):
        async def scenario():
            bus = EventBus()
            bus.attach(asyncio.get_running_loop())
            queue = bus.subscribe("job-1")
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: bus.publish("ping", {"x": 1}, channels=["job-1"])
            )
            event = await asyncio.wait_for(queue.get(), 5)
            return event

        event = asyncio.run(scenario())
        assert event.kind == "ping"
        assert event.data == {"x": 1}

    def test_every_event_mirrors_to_the_global_channel(self):
        bus = EventBus()
        bus.publish("a", {}, channels=["one"])
        bus.publish("b", {}, channels=["two"])
        assert [e.kind for e in bus.history(GLOBAL_CHANNEL)] == ["a", "b"]
        assert [e.kind for e in bus.history("one")] == ["a"]

    def test_sequence_numbers_are_bus_wide_and_monotonic(self):
        bus = EventBus()
        events = [bus.publish("e", {}, channels=[c]) for c in "abc"]
        assert [e.seq for e in events] == [1, 2, 3]

    def test_history_is_bounded(self):
        bus = EventBus(history_limit=3)
        for index in range(10):
            bus.publish("e", {"i": index})
        kept = [e.data["i"] for e in bus.history(GLOBAL_CHANNEL)]
        assert kept == [7, 8, 9]


# ---------------------------------------------------------------------------
# Job lifecycle over HTTP
# ---------------------------------------------------------------------------

class TestJobLifecycle:
    def test_job_executes_through_queue_and_returns_analyses(
        self, tmp_path, start_server
    ):
        store = ResultStore(tmp_path / "store")
        _, client = start_server(store)
        rm, hrp = _scenario(setup="rm"), _scenario(setup="hrp")
        submitted = client.submit(
            {"specs": [_spec(rm), _spec(hrp)], "cutoffs": list(CUTOFFS)}
        )
        assert submitted["scenarios"] == 2
        finished = client.wait(submitted["job_id"], timeout=120)
        assert finished["state"] == "done"
        assert finished["report"]["simulated"] == 2
        # Jobs always route through the exec queue (shards were planned).
        assert finished["report"]["shards_planned"] > 0
        results = finished["results"]
        assert [r["spec_hash"] for r in results] == [
            rm.spec_hash(),
            hrp.spec_hash(),
        ]
        for entry in results:
            assert entry["source"] == "simulated"
            assert entry["runs"] == 24
            pwcet = entry["analysis"]["pwcet"]
            assert set(pwcet) == {"1e-12", "1e-15"}
        # The campaigns and analyses landed in the shared store.
        assert store.load(rm.spec_hash()) is not None
        analysis_hash = MbptaConfig(
            exceedance_probabilities=CUTOFFS
        ).analysis_hash()
        assert store.load_analysis(rm.spec_hash(), analysis_hash) is not None

    def test_small_campaigns_skip_analysis(self, tmp_path, start_server):
        _, client = start_server(ResultStore(tmp_path / "store"))
        submitted = client.submit({"spec": _spec(_scenario(runs=8))})
        finished = client.wait(submitted["job_id"], timeout=60)
        assert finished["state"] == "done"
        assert finished["results"][0]["analysis"] is None

    def test_bad_spec_is_a_400_with_the_validation_message(
        self, tmp_path, start_server
    ):
        _, client = start_server(ResultStore(tmp_path / "store"))
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"spec": {"version": 99}})
        assert excinfo.value.status == 400
        assert "version" in excinfo.value.message

    def test_unknown_job_and_route_are_404(self, tmp_path, start_server):
        _, client = start_server(ResultStore(tmp_path / "store"))
        with pytest.raises(ServiceError) as excinfo:
            client.job("nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/v2/other")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, tmp_path, start_server):
        _, client = start_server(ResultStore(tmp_path / "store"))
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/v1/engines", {})
        assert excinfo.value.status == 405

    def test_registry_endpoints_mirror_the_registries(
        self, tmp_path, start_server
    ):
        _, client = start_server(ResultStore(tmp_path / "store"))
        engines = client.engines()
        assert "fast" in engines and "numpy" in engines
        assert "available" in engines["fast"]
        estimators = client.estimators()
        assert "gumbel-pwm" in estimators

    def test_jobs_listing_summarises_every_job(self, tmp_path, start_server):
        _, client = start_server(ResultStore(tmp_path / "store"))
        assert client.jobs() == []
        submitted = client.submit({"spec": _spec(_scenario(runs=8))})
        client.wait(submitted["job_id"], timeout=60)
        listing = client.jobs()
        assert [entry["job_id"] for entry in listing] == [submitted["job_id"]]
        assert listing[0]["state"] == "done"
        assert listing[0]["scenarios"] == 1
        assert "results" not in listing[0]  # summaries keep the listing small

    def test_manager_jobs_default_applies_unless_overridden(
        self, tmp_path, monkeypatch
    ):
        """The `repro serve --jobs` default reaches the scenarios."""
        monkeypatch.setattr(JobManager, "_execute", lambda self, job: None)
        manager = JobManager(ResultStore(tmp_path / "store"), EventBus(), jobs=3)
        try:
            defaulted = manager.submit({"spec": _spec(_scenario())})
            assert [s.jobs for s in defaulted.scenarios] == [3]
            overridden = manager.submit({"spec": _spec(_scenario()), "jobs": 2})
            assert [s.jobs for s in overridden.scenarios] == [2]
        finally:
            manager.shutdown()

    def test_sse_stream_replays_and_terminates(self, tmp_path, start_server):
        _, client = start_server(ResultStore(tmp_path / "store"))
        submitted = client.submit({"spec": _spec(_scenario(runs=8))})
        client.wait(submitted["job_id"], timeout=60)
        # Connect after completion: the stream replays history and closes.
        kinds = [e["event"] for e in client.events(submitted["job_id"])]
        assert kinds[0] == "job-submitted"
        assert kinds[-1] == "job-completed"
        assert "job-started" in kinds
        assert "scenario-resolved" in kinds
        seqs = [e["seq"] for e in client.events(submitted["job_id"])]
        assert seqs == sorted(seqs)


# ---------------------------------------------------------------------------
# Warm overlap: the tentpole's dedupe guarantee
# ---------------------------------------------------------------------------

class TestWarmOverlap:
    def test_concurrent_overlapping_sweeps_share_work(
        self, tmp_path, start_server, monkeypatch
    ):
        """Two clients, same sweep, concurrently: one simulates, none refit.

        Phase 1 warms the store.  Phase 2 submits the identical sweep from
        two concurrent clients; both must resolve entirely from the store
        (zero simulations, zero EVT fits) with identical payloads.
        """
        store = ResultStore(tmp_path / "store")
        server, client = start_server(store)
        specs = [_spec(_scenario(setup="rm")), _spec(_scenario(setup="hrp"))]
        payload = {"specs": specs, "cutoffs": list(CUTOFFS)}
        cold = client.wait(client.submit(payload)["job_id"], timeout=120)
        assert cold["state"] == "done"
        assert cold["report"]["simulated"] == 2

        counter = _FitCounter(monkeypatch)
        second = ServiceClient(client.url, timeout=60)
        outcomes = {}

        def run(name, which_client):
            job_id = which_client.submit(payload)["job_id"]
            outcomes[name] = which_client.wait(job_id, timeout=120)

        threads = [
            threading.Thread(target=run, args=("a", client)),
            threading.Thread(target=run, args=("b", second)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(150)
        assert set(outcomes) == {"a", "b"}
        for name in ("a", "b"):
            finished = outcomes[name]
            assert finished["state"] == "done"
            assert finished["report"]["full_cache_hit"] is True
            assert finished["report"]["cache_hits"] == 2
            assert finished["report"]["simulated"] == 0
            assert all(r["source"] == "store" for r in finished["results"])
        assert counter.calls == 0  # warm overlap: zero EVT fits
        # Bit-identical responses between the two concurrent clients.
        strip = lambda p: {k: v for k, v in p.items() if k in ("results", "report")}  # noqa: E731
        assert json.dumps(strip(outcomes["a"]), sort_keys=True) == json.dumps(
            strip(outcomes["b"]), sort_keys=True
        )
        # And identical to the cold run's payloads (minus the provenance
        # marker, which legitimately flips from "simulated" to "store").
        unsourced = lambda results: [  # noqa: E731
            {k: v for k, v in entry.items() if k != "source"} for entry in results
        ]
        assert json.dumps(
            unsourced(outcomes["a"]["results"]), sort_keys=True
        ) == json.dumps(unsourced(cold["results"]), sort_keys=True)

    def test_server_results_are_byte_identical_to_the_cli_path(
        self, tmp_path, start_server, monkeypatch, capsys
    ):
        """`submit` answers from the same bytes `study run` stores."""
        store_dir = tmp_path / "store"
        assert (
            main(
                ["study", "run", "fig5", "--runs", "24", "--scale", "0.05",
                 "--store", str(store_dir)]
            )
            == 0
        )
        capsys.readouterr()  # drop the CLI chatter
        store = ResultStore(store_dir)
        settings = replace(
            ExperimentSettings.from_env(), runs=24, scale=0.05
        )
        scenarios = get_study("fig5").plan(settings)
        counter = _FitCounter(monkeypatch)
        _, client = start_server(store)
        finished = client.wait(
            client.submit(
                {
                    "specs": [s.spec_dict() for s in scenarios],
                    "cutoffs": [settings.secondary_cutoff, settings.cutoff],
                }
            )["job_id"],
            timeout=60,
        )
        assert finished["state"] == "done"
        assert finished["report"]["full_cache_hit"] is True
        assert counter.calls == 0  # analyses loaded, not refit
        for scenario, entry in zip(scenarios, finished["results"]):
            spec_hash = scenario.spec_hash()
            assert entry["spec_hash"] == spec_hash
            stored = store.load(spec_hash)
            campaign = stored.campaign()
            assert entry["mean"] == campaign.mean
            assert entry["high_water_mark"] == campaign.high_water_mark
            # The analysis payload is byte-for-byte what the CLI persisted.
            persisted = store.load_analysis(
                spec_hash, scenario.mbpta.analysis_hash()
            )
            assert persisted is not None
            assert json.dumps(entry["analysis"], sort_keys=True) == json.dumps(
                persisted, sort_keys=True
            )


# ---------------------------------------------------------------------------
# Crash resilience: SIGKILLed external worker, job still completes
# ---------------------------------------------------------------------------

class TestCrashResilience:
    def test_job_survives_sigkilled_external_worker(
        self, tmp_path, start_server, monkeypatch
    ):
        """E2E: kill a worker mid-shard, the job completes via lease reclaim.

        An external worker claims a shard of the job's campaign and dies
        (SIGKILL) holding the lease.  The server's own execution reclaims
        the dead-pid lease and finishes; a repeat submission then resolves
        fully warm with zero EVT fits.
        """
        scenario = _scenario(runs=24)
        store = ResultStore(tmp_path / "store")
        queue = FileQueue(store.queue_root)
        # Pre-enqueue the job's own shard plan so the external worker has
        # the real tasks to claim before the server even starts.
        shards = plan_shards(scenario.spec_hash(), scenario.runs, 4)
        for shard in shards:
            queue.enqueue(shard_task(scenario, shard, scenario.engine))

        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_EXEC_THROTTLE"] = "30"  # kill lands between claim and run
        worker = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--store", str(store.root)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 30
            lease_paths = [queue.lease_path(p) for p in queue.tasks()]
            while time.time() < deadline:
                if any(p.exists() for p in lease_paths):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("worker never claimed a shard")
        finally:
            worker.send_signal(signal.SIGKILL)
            worker.wait()
        held = [p for p in queue.tasks() if queue.lease_for(p) is not None]
        assert held and not queue.lease_for(held[0]).active()  # dead pid

        _, client = start_server(store)
        submitted = client.submit(
            {"spec": _spec(scenario), "shard_size": 4, "cutoffs": list(CUTOFFS)}
        )
        finished = client.wait(submitted["job_id"], timeout=120)
        assert finished["state"] == "done"
        assert finished["results"][0]["source"] == "simulated"
        baseline = finished["results"][0]

        counter = _FitCounter(monkeypatch)
        warm = client.wait(
            client.submit(
                {"spec": _spec(scenario), "cutoffs": list(CUTOFFS)}
            )["job_id"],
            timeout=60,
        )
        assert warm["state"] == "done"
        assert warm["report"]["full_cache_hit"] is True
        assert counter.calls == 0
        for key in ("mean", "high_water_mark", "runs", "analysis"):
            assert warm["results"][0][key] == baseline[key]


# ---------------------------------------------------------------------------
# Status, heartbeat telemetry, GC
# ---------------------------------------------------------------------------

class TestStatusAndGc:
    def test_status_embeds_the_exec_snapshot_and_job_counts(
        self, tmp_path, start_server
    ):
        store = ResultStore(tmp_path / "store")
        _, client = start_server(store)
        submitted = client.submit({"spec": _spec(_scenario(runs=8))})
        client.wait(submitted["job_id"], timeout=60)
        status = client.status()
        assert status["service"]["jobs"]["done"] == 1
        assert status["service"]["uptime_seconds"] >= 0
        # The exec section is format_exec_status's own snapshot, verbatim
        # in shape (heartbeat ages move between calls, so compare keys).
        local = exec_status_snapshot(store)
        assert set(status["exec"]) == set(local)
        assert status["exec"]["queue_root"] == local["queue_root"]
        # The in-process queue drain left heartbeat telemetry with the
        # engine recorded (satellite: engine name + availability).
        workers = status["exec"]["workers"]
        assert workers and all(w["engine"] == "fast" for w in workers)
        assert all(w["engine_availability"] is None for w in workers)

    def test_worker_heartbeats_surface_engine_over_http(
        self, tmp_path, start_server
    ):
        store = ResultStore(tmp_path / "store")
        _, client = start_server(store)
        submitted = client.submit({"spec": _spec(_scenario(runs=8))})
        client.wait(submitted["job_id"], timeout=60)
        beats = read_heartbeats(FileQueue(store.queue_root))
        assert beats and beats[0].engine == "fast"

    def test_gc_endpoint_plans_then_sweeps(self, tmp_path, start_server):
        store = ResultStore(tmp_path / "store")
        store.save_analysis("aaa", "cfg", {"v": 1})
        _, client = start_server(store)
        plan = client.gc(older_than=0, dry_run=True)
        assert plan["dry_run"] is True
        assert any("aaa" in path for path in plan["candidates"])
        assert store.load_analysis("aaa", "cfg") is not None  # nothing deleted
        swept = client.gc(older_than=0)
        assert swept["removed"] >= 1
        assert store.load_analysis("aaa", "cfg") is None
        assert client.status()["service"]["gc"]["sweeps"] == 1

    def test_gc_service_shares_decisions_with_clean_dry_run(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.save_analysis("aaa", "cfg", {"v": 1})
        store.save_shard("bbb", "00000000x000004", {"version": 1})
        service = GcService(store, EventBus(), older_than=0.0)
        # The service defaults to analyses-only (published shards may belong
        # to a campaign still running; age alone cannot tell).
        assert service.plan() == [
            str(path.relative_to(store.root))
            for path in store.sweep_candidates(0.0, analyses_only=True)
        ]
        assert service.sweep_once() == 1
        assert store.load_shard("bbb", "00000000x000004") is not None
        # Sweeping shards and queue bookkeeping is an explicit request.
        assert service.plan(analyses_only=False) == [
            str(path.relative_to(store.root))
            for path in store.sweep_candidates(0.0, analyses_only=False)
        ]
        assert service.sweep_once(analyses_only=False) == 1
        assert service.plan(analyses_only=False) == []

    def test_background_gc_never_sweeps_published_shards(
        self, tmp_path, start_server
    ):
        """A campaign outliving gc_age must not lose its published shards."""
        store = ResultStore(tmp_path / "store")
        store.save_analysis("aaa", "cfg", {"v": 1})
        store.save_shard("bbb", "00000000x000004", {"version": 1})
        _, client = start_server(store, gc_interval=0.2, gc_age=0.0)
        deadline = time.time() + 10
        while time.time() < deadline:
            if client.status()["service"]["gc"]["sweeps"] >= 1:
                break
            time.sleep(0.1)
        else:
            pytest.fail("background GC never swept")
        assert store.load_analysis("aaa", "cfg") is None
        assert store.load_shard("bbb", "00000000x000004") is not None

    def test_gc_rejects_non_numeric_older_than(self, tmp_path, start_server):
        _, client = start_server(ResultStore(tmp_path / "store"))
        with pytest.raises(ServiceError) as excinfo:
            client.gc(older_than="soon")  # type: ignore[arg-type]
        assert excinfo.value.status == 400
        assert "older_than" in excinfo.value.message

    def test_background_gc_loop_sweeps_periodically(
        self, tmp_path, start_server
    ):
        store = ResultStore(tmp_path / "store")
        store.save_analysis("aaa", "cfg", {"v": 1})
        _, client = start_server(store, gc_interval=0.2, gc_age=0.0)
        deadline = time.time() + 10
        while time.time() < deadline:
            if client.status()["service"]["gc"]["sweeps"] >= 1:
                break
            time.sleep(0.1)
        else:
            pytest.fail("background GC never swept")
        assert store.load_analysis("aaa", "cfg") is None


# ---------------------------------------------------------------------------
# The CLI client surface: python -m repro submit
# ---------------------------------------------------------------------------

class TestSubmitCli:
    def test_submit_waits_and_renders_then_hits_cache(
        self, tmp_path, start_server, capsys
    ):
        store = ResultStore(tmp_path / "store")
        server, _ = start_server(store)
        url = f"http://127.0.0.1:{server.bound_port}"
        argv = ["submit", "fig5", "--runs", "24", "--scale", "0.05", "--url", url]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "job " in cold and ": done" in cold
        assert "pWCET@" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "full cache hit" in warm
        assert "source=store" in warm

    def test_submit_json_format_emits_the_job_payload(
        self, tmp_path, start_server, capsys
    ):
        store = ResultStore(tmp_path / "store")
        server, _ = start_server(store)
        url = f"http://127.0.0.1:{server.bound_port}"
        assert (
            main(
                ["submit", "fig5", "--runs", "24", "--scale", "0.05",
                 "--url", url, "--format", "json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["state"] == "done"
        assert len(payload["results"]) == 2

    def test_submit_no_wait_returns_after_the_202(
        self, tmp_path, start_server, capsys
    ):
        store = ResultStore(tmp_path / "store")
        server, client = start_server(store)
        url = f"http://127.0.0.1:{server.bound_port}"
        assert (
            main(
                ["submit", "fig5", "--runs", "24", "--scale", "0.05",
                 "--url", url, "--no-wait"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2 scenario(s)" in out
        job_id = out.split()[1].rstrip(":")
        assert client.wait(job_id, timeout=120)["state"] == "done"

    def test_submit_follow_renders_the_event_stream(
        self, tmp_path, start_server, capsys
    ):
        store = ResultStore(tmp_path / "store")
        server, _ = start_server(store)
        url = f"http://127.0.0.1:{server.bound_port}"
        argv = ["submit", "fig5", "--runs", "24", "--scale", "0.05",
                "--url", url, "--follow"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "submitted: 2 scenario(s)" in out
        assert "started" in out
        assert "scenario " in out
        assert "completed:" in out
        # The final payload is still rendered after the stream closes.
        assert ": done" in out
        assert "pWCET@" in out

    def test_submit_follow_conflicts_with_no_wait(self, capsys):
        with pytest.raises(SystemExit):
            main(["submit", "fig5", "--runs", "24", "--follow", "--no-wait"])
        assert "--no-wait" in capsys.readouterr().err

    def test_submit_against_no_server_fails_cleanly(self, capsys):
        assert (
            main(
                ["submit", "fig5", "--runs", "24",
                 "--url", "http://127.0.0.1:9"]  # discard port: nothing listens
            )
            == 1
        )
        assert "cannot reach" in capsys.readouterr().err

    def test_submit_validates_runs_like_the_other_surfaces(self, capsys):
        assert main(["submit", "fig5", "--runs", "4"]) == 2
        assert "at least" in capsys.readouterr().err
