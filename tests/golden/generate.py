"""Regenerate the golden ``--format text`` outputs of the nine drivers.

The goldens pin the byte-identical migration guarantee of the study
subsystem: every driver's ``format()`` output at the settings below must
stay stable across refactors.  Run from the repository root:

    PYTHONPATH=src python tests/golden/generate.py
"""
from dataclasses import replace
from pathlib import Path

from repro.analysis.experiments import (
    ExperimentSettings,
    experiment_avg_performance,
    experiment_fig1,
    experiment_fig4a,
    experiment_fig4b,
    experiment_fig5,
    experiment_footprint_ablation,
    experiment_replacement_ablation,
    experiment_table1,
    experiment_table2,
)

SMALL = ExperimentSettings(runs=40, scale=0.25)

#: Experiment id -> zero-argument callable reproducing it at golden scale.
GOLDEN_CASES = {
    "table1": lambda: experiment_table1(),
    "table2": lambda: experiment_table2(SMALL),
    "fig1": lambda: experiment_fig1(SMALL, benchmark="a2time"),
    "fig4a": lambda: experiment_fig4a(SMALL),
    "fig4b": lambda: experiment_fig4b(SMALL),
    "fig5": lambda: experiment_fig5(
        SMALL, footprint_bytes=20 * 1024, iterations=3
    ),
    "avg_perf": lambda: experiment_avg_performance(SMALL),
    "ablation_seg": lambda: experiment_footprint_ablation(
        ExperimentSettings(runs=30), footprints=(4 * 1024, 20 * 1024), iterations=2
    ),
    "ablation_repl": lambda: experiment_replacement_ablation(
        ExperimentSettings(runs=25, scale=0.25)
    ),
    # Per-estimator baselines: the same fig5 campaigns projected through the
    # non-default registered estimators, so estimator refactors are pinned
    # as tightly as the protocol default (gumbel-pwm, covered by fig5.txt).
    "fig5_gumbel_mle": lambda: experiment_fig5(
        replace(SMALL, estimator="gumbel-mle"),
        footprint_bytes=20 * 1024,
        iterations=3,
    ),
    "fig5_exponential_excess": lambda: experiment_fig5(
        replace(SMALL, estimator="exponential-excess"),
        footprint_bytes=20 * 1024,
        iterations=3,
    ),
}


def main() -> None:
    golden_dir = Path(__file__).resolve().parent
    for identifier, case in GOLDEN_CASES.items():
        text = case().format()
        (golden_dir / f"{identifier}.txt").write_text(text + "\n")
        print(f"wrote {identifier}.txt ({len(text.splitlines())} lines)")


if __name__ == "__main__":
    main()
