"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cache.cache import CacheConfig
from repro.cache.hierarchy import HierarchyConfig, MemoryTimings
from repro.core.placement import PlacementGeometry
from repro.cpu.trace import Trace
from repro.workloads.base import KernelSpec, build_kernel_trace


@pytest.fixture
def small_geometry() -> PlacementGeometry:
    """A small 16-set, 32-byte-line geometry used by placement tests."""
    return PlacementGeometry(num_sets=16, line_size=32)


@pytest.fixture
def leon3_geometry() -> PlacementGeometry:
    """The L1 geometry of the paper's LEON3 (128 sets, 32-byte lines)."""
    return PlacementGeometry(num_sets=128, line_size=32)


@pytest.fixture
def tiny_hierarchy_config() -> HierarchyConfig:
    """A miniature two-level hierarchy that conflicts easily (fast tests).

    The L1s use hRP placement so that campaigns on this configuration show
    run-to-run variability even for small working sets (Random Modulo would
    be conflict-free, hence constant, at this scale).
    """
    il1 = CacheConfig(
        name="IL1", size_bytes=1024, ways=2, line_size=32,
        placement="hrp", replacement="random", write_policy="write-through",
    )
    dl1 = CacheConfig(
        name="DL1", size_bytes=1024, ways=2, line_size=32,
        placement="hrp", replacement="random", write_policy="write-through",
    )
    l2 = CacheConfig(
        name="L2", size_bytes=4096, ways=4, line_size=32,
        placement="hrp", replacement="random", write_policy="write-back",
    )
    return HierarchyConfig(il1=il1, dl1=dl1, l2=l2, timings=MemoryTimings())


@pytest.fixture
def small_kernel_trace() -> Trace:
    """A small but non-trivial kernel trace (~1500 accesses)."""
    spec = KernelSpec(
        name="unit_kernel",
        description="small kernel for unit tests",
        code_bytes=256,
        table_bytes=(512, 256),
        state_bytes=64,
        iterations=16,
        loads_per_iteration=12,
        stores_per_iteration=4,
        pattern="strided",
        stride=32,
    )
    return build_kernel_trace(spec)
