"""Cross-engine equivalence: every registered engine must agree bit-exactly.

The fast engine is validated against the reference model in
``test_fastsim.py``; these tests close the loop over the *registry*: random
traces and configurations are replayed through **all registered engines**
(so a future backend is automatically covered the moment it registers) and
every counter must match, run by run — including through the campaign and
process-pool layers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.campaign import run_campaign
from repro.cache.cache import CacheConfig
from repro.cache.fastsim import CompiledTrace
from repro.cache.hierarchy import HierarchyConfig, MemoryTimings
from repro.cpu.core import TraceDrivenCore
from repro.cpu.trace import Trace
from repro.engine import JitEngine, NumpyEngine, available_engines, get_engine


def build_config(
    l1_placement="rm",
    l1_replacement="random",
    l1_write="write-through",
    l2_placement="hrp",
    l2_replacement="random",
    l2_write="write-back",
    with_l2=True,
    ways=2,
):
    l1_size = ways * 32 * 8  # 8 sets at any associativity
    il1 = CacheConfig(
        name="IL1", size_bytes=l1_size, ways=ways, line_size=32,
        placement=l1_placement, replacement=l1_replacement, write_policy=l1_write,
    )
    dl1 = CacheConfig(
        name="DL1", size_bytes=l1_size, ways=ways, line_size=32,
        placement=l1_placement, replacement=l1_replacement, write_policy=l1_write,
    )
    l2 = (
        CacheConfig(
            name="L2", size_bytes=2048, ways=4, line_size=32,
            placement=l2_placement, replacement=l2_replacement,
            write_policy=l2_write,
        )
        if with_l2
        else None
    )
    return HierarchyConfig(il1=il1, dl1=dl1, l2=l2, timings=MemoryTimings())


#: Execution paths beyond the registry defaults: both numpy paths pinned
#: explicitly (the registered engine picks one automatically) and the jit
#: kernel run interpreted — the tier's certification path on machines
#: without numba (the registry covers the compiled form when numba exists).
EXTRA_PATHS = {
    "numpy-plan": lambda: NumpyEngine(use_plan=True),
    "numpy-interp": lambda: NumpyEngine(use_plan=False),
    "jit-python": lambda: JitEngine(force_python=True),
}


def run_all_engines(config, trace, seeds):
    """Map engine name -> list of per-seed result dicts, via the registry.

    Registry engines model different configuration subsets (the fast engine
    is random/lru replacement and a write-back L2 only), so an engine
    rejecting the config with its own ValueError is skipped; the reference
    model covers everything, so at least two paths always remain and
    ``assert_all_equal`` still has a cross-check.
    """
    compiled = CompiledTrace(trace, line_size=config.il1.line_size)
    results = {}
    for name in available_engines():
        try:
            simulator = get_engine(name).simulator(config, compiled)
            results[name] = [
                result.as_dict() for result in simulator.run_batch(seeds)
            ]
        except ValueError:
            continue
    assert "reference" in results  # the ground truth never opts out
    return results


def run_all_paths(config, trace, seeds):
    """Registry engines plus the plan / interpreter / jit-kernel paths."""
    results = run_all_engines(config, trace, seeds)
    compiled = CompiledTrace(trace, line_size=config.il1.line_size)
    for name, make_engine in EXTRA_PATHS.items():
        simulator = make_engine().simulator(config, compiled)
        results[name] = [result.as_dict() for result in simulator.run_batch(seeds)]
    return results


def assert_all_equal(results):
    names = sorted(results)
    assert len(names) >= 2, f"need a cross-check, got only {names}"
    baseline_name = names[0]
    baseline = results[baseline_name]
    for name in names[1:]:
        assert results[name] == baseline, f"{name} disagrees with {baseline_name}"


class TestAllRegisteredEnginesAgree:
    @given(
        seed=st.integers(0, 2**64 - 1),
        accesses=st.lists(
            st.tuples(st.sampled_from([0, 1, 2]), st.integers(0, 63)),
            min_size=10,
            max_size=200,
        ),
        l1_placement=st.sampled_from(["modulo", "xor", "hrp", "rm"]),
        l1_replacement=st.sampled_from(["random", "lru", "fifo", "plru"]),
        l1_write=st.sampled_from(["write-through", "write-back"]),
        l2_placement=st.sampled_from(["modulo", "xor", "hrp", "rm"]),
        l2_replacement=st.sampled_from(["random", "lru", "fifo", "plru"]),
        l2_write=st.sampled_from(["write-through", "write-back"]),
        with_l2=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_traces_and_configs_property(
        self, seed, accesses, l1_placement, l1_replacement, l1_write,
        l2_placement, l2_replacement, l2_write, with_l2
    ):
        """Identical cycles and miss counters across every registered engine."""
        trace = Trace(name="hypothesis")
        for kind, line in accesses:
            trace.append(kind, 0x40000000 + line * 32)
        config = build_config(
            l1_placement=l1_placement,
            l1_replacement=l1_replacement,
            l1_write=l1_write,
            l2_placement=l2_placement,
            l2_replacement=l2_replacement,
            l2_write=l2_write,
            with_l2=with_l2,
        )
        assert_all_equal(run_all_paths(config, trace, [seed, seed ^ 0xDEAD]))

    def test_l2_lru_and_deterministic_l2_placement(self, small_kernel_trace):
        """Directed coverage of the L2 LRU-stamp and static-map paths."""
        for l2_placement in ("modulo", "rm"):
            config = build_config(
                l1_write="write-back",
                l2_placement=l2_placement,
                l2_replacement="lru",
            )
            assert_all_equal(run_all_engines(config, small_kernel_trace, list(range(5))))

    def test_three_way_cache_exercises_rejection_sampling(self, small_kernel_trace):
        """Non-power-of-two associativity hits the PRNG rejection-sampling path."""
        config = build_config(l1_placement="hrp", ways=3)
        assert_all_equal(run_all_engines(config, small_kernel_trace, list(range(8))))

    def test_lru_write_through_store_demotion(self, small_kernel_trace):
        """WT store hits under LRU touch stamps without establishing
        residence guarantees — the exact interaction the plan compiler's
        guard-drop rule exists for (see repro.engine.plan)."""
        for l1_placement, ways, with_l2 in (
            ("modulo", 3, False),
            ("xor", 2, True),
            ("rm", 2, True),
        ):
            config = build_config(
                l1_placement=l1_placement,
                l1_replacement="lru",
                l1_write="write-through",
                with_l2=with_l2,
                ways=ways,
            )
            assert_all_equal(
                run_all_paths(config, small_kernel_trace, list(range(6)))
            )

    @pytest.mark.parametrize("replacement", ["fifo", "plru"])
    @pytest.mark.parametrize("l1_write", ["write-through", "write-back"])
    @pytest.mark.parametrize("with_l2", [False, True])
    def test_fifo_and_plru_compiled_plans(
        self, small_kernel_trace, replacement, l1_write, with_l2
    ):
        """Directed FIFO/PLRU coverage: the plan path (numpy and the jit
        kernel) must agree with the reference model across both write
        policies, with and without an L2 — the configurations the plan
        compiler gained in this tentpole."""
        config = build_config(
            l1_replacement=replacement,
            l1_write=l1_write,
            l2_replacement=replacement,
            with_l2=with_l2,
        )
        results = run_all_paths(config, small_kernel_trace, list(range(6)))
        # The pinned plan path really compiled a plan (no silent interpreter
        # fallback hiding a coverage regression).
        assert "numpy-plan" in results
        assert_all_equal(results)

    @pytest.mark.parametrize("l2_replacement", ["random", "lru", "fifo", "plru"])
    def test_write_through_l2_compiled_plans(
        self, small_kernel_trace, l2_replacement
    ):
        """A write-through L2 (stores propagate to memory, no dirty lines)
        through the compiled plan path, against the reference model."""
        config = build_config(
            l1_write="write-back",
            l2_replacement=l2_replacement,
            l2_write="write-through",
        )
        assert_all_equal(run_all_paths(config, small_kernel_trace, list(range(6))))

    def test_trace_core_routes_all_engines(self, small_kernel_trace, tiny_hierarchy_config):
        core = TraceDrivenCore(tiny_hierarchy_config, small_kernel_trace)
        for seed in (0, 9, 2**63 + 5):
            runs = {
                name: [core.run(seed, engine=name).as_dict()]
                for name in available_engines()
            }
            assert_all_equal(runs)


class TestPlanPathEdgeCases:
    """Degenerate shapes where the plan compiler's derived structure could
    go wrong: every path (fast, plan, interpreter, jit kernel) must agree."""

    def _single_set_config(self, ways, placement, replacement, write):
        l1_size = ways * 32  # exactly one set
        cache = dict(
            size_bytes=l1_size, ways=ways, line_size=32,
            placement=placement, replacement=replacement, write_policy=write,
        )
        return HierarchyConfig(
            il1=CacheConfig(name="IL1", **cache),
            dl1=CacheConfig(name="DL1", **cache),
            l2=None,
            timings=MemoryTimings(),
        )

    @pytest.mark.parametrize("replacement", ["random", "lru"])
    # rm cannot express num_sets == 1 (the permutation network needs at
    # least one index bit), so hrp is the randomized-placement lens here.
    @pytest.mark.parametrize("placement", ["modulo", "hrp"])
    def test_single_set_caches(self, small_kernel_trace, placement, replacement):
        """num_sets == 1: every line conflicts with every other line."""
        config = self._single_set_config(4, placement, replacement, "write-through")
        assert_all_equal(run_all_paths(config, small_kernel_trace, [0, 1, 7]))

    @pytest.mark.parametrize("write", ["write-through", "write-back"])
    def test_direct_mapped_caches(self, small_kernel_trace, write):
        """ways == 1: the victim is forced, but draws must still be consumed
        in the fast engine's order for randomized replacement."""
        for placement in ("modulo", "hrp"):
            config = build_config(
                l1_placement=placement, l1_write=write, ways=1, with_l2=True
            )
            assert_all_equal(run_all_paths(config, small_kernel_trace, [3, 11]))

    def test_traces_shorter_than_one_run(self):
        """0/1/2-access traces: no same-line run ever forms."""
        for accesses in ([], [(0, 0)], [(2, 5), (2, 5)], [(1, 3), (2, 3)]):
            trace = Trace(name="tiny")
            for kind, line in accesses:
                trace.append(kind, 0x40000000 + line * 32)
            for write in ("write-through", "write-back"):
                config = build_config(l1_write=write)
                assert_all_equal(run_all_paths(config, trace, [0, 5]))

    def test_empty_seed_batch(self, small_kernel_trace):
        config = build_config()
        for results in run_all_paths(config, small_kernel_trace, []).values():
            assert results == []


class TestCampaignLevelEquivalence:
    def test_serial_campaigns_identical_across_engines(
        self, small_kernel_trace, tiny_hierarchy_config
    ):
        campaigns = {
            name: run_campaign(
                small_kernel_trace,
                tiny_hierarchy_config,
                runs=12,
                master_seed=77,
                engine=name,
            ).execution_times
            for name in available_engines()
        }
        assert_all_equal(campaigns)

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_numpy_engine_bit_exact_under_process_pool(
        self, jobs, small_kernel_trace, tiny_hierarchy_config
    ):
        """engine='numpy' composes with jobs>1: vectorized chunks per worker."""
        serial_fast = run_campaign(
            small_kernel_trace, tiny_hierarchy_config, runs=13, master_seed=3
        )
        parallel_numpy = run_campaign(
            small_kernel_trace,
            tiny_hierarchy_config,
            runs=13,
            master_seed=3,
            engine="numpy",
            jobs=jobs,
        )
        assert parallel_numpy.execution_times == serial_fast.execution_times

    def test_numpy_batch_chunking_is_invisible(self, small_kernel_trace, tiny_hierarchy_config):
        """Internal lane chunking must not change results."""
        from repro.engine.numpy_engine import NumpyEngine

        compiled = CompiledTrace(
            small_kernel_trace, line_size=tiny_hierarchy_config.il1.line_size
        )
        seeds = list(range(17))
        whole = NumpyEngine().simulator(tiny_hierarchy_config, compiled).run_batch(seeds)
        chunked = (
            NumpyEngine(max_lanes=4).simulator(tiny_hierarchy_config, compiled).run_batch(seeds)
        )
        assert whole == chunked
