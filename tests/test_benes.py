"""Tests for the permutation networks used by Random Modulo."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.benes import (
    BenesNetwork,
    OddEvenNetwork,
    make_permutation_network,
)


class TestBenesStructure:
    def test_width_8_has_20_switches(self):
        # The paper: "When using a 8-bit Benes network 20 bits are required
        # to drive the actual permutation of the index bits."
        assert BenesNetwork(8).num_switches == 20

    def test_width_2_is_single_switch(self):
        assert BenesNetwork(2).num_switches == 1

    def test_width_4_has_6_switches(self):
        assert BenesNetwork(4).num_switches == 6

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BenesNetwork(7)

    def test_switch_positions_are_valid_wires(self):
        network = BenesNetwork(16)
        for a, b in network.switches:
            assert 0 <= a < 16 and 0 <= b < 16 and a != b


class TestOddEvenStructure:
    def test_arbitrary_width(self):
        network = OddEvenNetwork(7)
        assert network.width == 7
        assert network.num_switches == 21  # 7 columns alternating 3/3 switches

    def test_single_wire_has_no_switches(self):
        assert OddEvenNetwork(1).num_switches == 0

    def test_rejects_zero_columns(self):
        with pytest.raises(ValueError):
            OddEvenNetwork(4, columns=0)


class TestFactory:
    def test_power_of_two_gets_benes(self):
        assert isinstance(make_permutation_network(8), BenesNetwork)

    def test_other_widths_get_odd_even(self):
        assert isinstance(make_permutation_network(7), OddEvenNetwork)

    def test_width_one(self):
        network = make_permutation_network(1)
        assert network.apply(0, 0) == 0

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            make_permutation_network(0)


class TestPermutationProperty:
    """Any control word must realise a bijection — the core RM guarantee."""

    @given(controls=st.integers(0, 2**20 - 1))
    def test_benes8_every_control_is_bijection(self, controls):
        network = BenesNetwork(8)
        images = {network.apply(value, controls) for value in range(256)}
        assert images == set(range(256))

    @given(controls=st.integers(0, 2**21 - 1))
    def test_oddeven7_every_control_is_bijection(self, controls):
        network = OddEvenNetwork(7)
        images = {network.apply(value, controls) for value in range(128)}
        assert images == set(range(128))

    @given(controls=st.integers(0, 2**6 - 1), value=st.integers(0, 15))
    def test_apply_matches_wire_permutation(self, controls, value):
        network = BenesNetwork(4)
        wires = network.wire_permutation(controls)
        expected = 0
        for position, source in enumerate(wires):
            expected |= ((value >> source) & 1) << position
        assert network.apply(value, controls) == expected

    def test_benes4_reaches_every_permutation(self):
        # Rearrangeability check: 2^6 control words must cover all 4! = 24
        # wire permutations of a 4-wide Benes network.
        network = BenesNetwork(4)
        reached = {tuple(network.wire_permutation(c)) for c in range(64)}
        assert len(reached) == 24

    def test_oddeven5_reaches_every_permutation(self):
        network = OddEvenNetwork(5)
        reached = {
            tuple(network.wire_permutation(c)) for c in range(1 << network.num_switches)
        }
        assert len(reached) == 120

    def test_zero_controls_is_identity(self):
        for network in (BenesNetwork(8), OddEvenNetwork(7)):
            for value in (0, 1, 42, network.width**2 % (1 << network.width)):
                assert network.apply(value, 0) == value

    def test_wrong_bit_count_rejected(self):
        with pytest.raises(ValueError):
            BenesNetwork(4).permute_bits([0, 1], controls=0)
