"""Analysis persistence: (spec_hash, analysis_config_hash)-keyed pWCET
results, ResultSet memoization and the zero-EVT-fits warm path."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

import repro.pwcet.registry as pwcet_registry
from repro.analysis.experiments import ExperimentSettings
from repro.pwcet import (
    MbptaConfig,
    analysis_from_payload,
    analysis_payload,
    apply_mbpta,
)
from repro.study import (
    HierarchySpec,
    ResultStore,
    Scenario,
    WorkloadSpec,
    get_study,
)
from repro.study.runner import execute_scenarios


def gumbel_sample(n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        float(v)
        for v in np.round(
            scipy_stats.gumbel_r.rvs(loc=20000, scale=300, size=n, random_state=rng)
        )
    ]


def tiny_scenarios(runs=24):
    workload = WorkloadSpec.synthetic(4 * 1024, iterations=2)
    return [
        Scenario(workload=workload, hierarchy=HierarchySpec.named(setup), runs=runs,
                 master_seed=77, label=setup)
        for setup in ("rm", "hrp")
    ]


class _FitCounter:
    """Wraps every registered estimator to count fit/fit_batch calls."""

    def __init__(self, monkeypatch):
        self.calls = 0
        for estimator in pwcet_registry._REGISTRY.values():
            for method_name in ("fit", "fit_batch"):
                original = getattr(estimator.__class__, method_name)
                monkeypatch.setattr(
                    estimator.__class__,
                    method_name,
                    self._wrap(original),
                    raising=True,
                )

    def _wrap(self, original):
        counter = self

        def wrapped(estimator_self, *args, **kwargs):
            counter.calls += 1
            return original(estimator_self, *args, **kwargs)

        return wrapped


class TestPayloadRoundTrip:
    @pytest.mark.parametrize(
        "estimator", ["gumbel-pwm", "gumbel-mle", "exponential-excess"]
    )
    def test_round_trip_is_exact(self, estimator):
        samples = gumbel_sample(300, seed=1)
        config = MbptaConfig(bootstrap=10)
        original = apply_mbpta(samples, config=config, estimator=estimator)
        import json

        payload = json.loads(json.dumps(analysis_payload(original)))
        rebuilt = analysis_from_payload(payload, samples)
        assert rebuilt is not None
        assert rebuilt.fit == original.fit
        assert rebuilt.curve == original.curve
        assert rebuilt.assessment == original.assessment
        assert rebuilt.pwcet == original.pwcet
        assert rebuilt.pwcet_ci == original.pwcet_ci
        assert rebuilt.discarded_runs == original.discarded_runs
        assert rebuilt.estimator == original.estimator
        assert rebuilt.config == original.config
        assert rebuilt.pwcet_at(1e-15) == original.pwcet_at(1e-15)

    def test_missing_or_malformed_payloads_are_misses(self):
        assert analysis_from_payload(None, [1.0] * 20) is None
        assert analysis_from_payload({"version": 999}, [1.0] * 20) is None
        assert analysis_from_payload({"version": 1}, [1.0] * 20) is None  # truncated


class TestStoreAnalysisEntries:
    def test_save_and_load(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        payload = {"version": 1, "anything": [1, 2]}
        store.save_analysis("spec" * 16, "cfg" * 21 + "c", payload)
        assert store.load_analysis("spec" * 16, "cfg" * 21 + "c") == payload
        assert store.analysis_keys() == [("spec" * 16, "cfg" * 21 + "c")]
        # Campaign keys are unaffected by analysis entries.
        assert store.keys() == []

    def test_corrupt_analysis_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.save_analysis("a", "b", {"version": 1})
        store.analysis_path_for("a", "b").write_text("{not json")
        assert store.load_analysis("a", "b") is None

    def test_clear_removes_analyses(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.save_analysis("a", "b", {"version": 1})
        assert store.clear() == 1
        assert store.analysis_keys() == []


class TestResultSetMemoization:
    def test_mbpta_is_memoized_per_estimator(self):
        results = execute_scenarios(tiny_scenarios())
        first = results.mbpta("rm")
        assert results.mbpta("rm") is first
        other = results.mbpta("rm", estimator="exponential-excess")
        assert other is not first
        assert results.mbpta("rm", estimator="exponential-excess") is other
        # The default-estimator memo is untouched by the override.
        assert results.mbpta("rm") is first

    def test_first_call_batches_the_whole_set(self, monkeypatch):
        counter = _FitCounter(monkeypatch)
        results = execute_scenarios(tiny_scenarios())
        results.mbpta("rm")
        calls_after_first = counter.calls
        # Both scenarios share (runs, config): one fit_batch call covers them.
        assert calls_after_first == 1
        results.mbpta("hrp")
        assert counter.calls == calls_after_first

    def test_store_round_trip_is_exact(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cold = execute_scenarios(tiny_scenarios(), store=store)
        cold_rm = cold.mbpta("rm")
        assert store.analysis_keys()  # analyses persisted
        warm = execute_scenarios(tiny_scenarios(), store=store)
        assert warm.report.full_cache_hit
        warm_rm = warm.mbpta("rm")
        assert warm_rm.fit == cold_rm.fit
        assert warm_rm.pwcet == cold_rm.pwcet
        assert warm_rm.assessment == cold_rm.assessment
        assert list(warm_rm.samples) == list(cold_rm.samples)

    def test_no_cache_ignores_stored_analyses(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        cold = execute_scenarios(tiny_scenarios(), store=store)
        cold.mbpta("rm")
        counter = _FitCounter(monkeypatch)
        fresh = execute_scenarios(tiny_scenarios(), store=store, use_cache=False)
        fresh.mbpta("rm")
        assert counter.calls > 0


class TestZeroEvtFitsOnWarmStore:
    """Acceptance criterion: a second ``study run`` performs zero EVT fits."""

    SETTINGS = ExperimentSettings(runs=24, scale=0.25)

    def test_second_fig5_run_fits_nothing(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        study = get_study("fig5")
        study.run(self.SETTINGS, store=store)
        assert store.analysis_keys()
        counter = _FitCounter(monkeypatch)
        warm = study.run(self.SETTINGS, store=store)
        assert warm.report.full_cache_hit
        assert counter.calls == 0

    def test_result_set_compare_estimators_reuses_cache(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        cold = execute_scenarios(tiny_scenarios(), store=store)
        cold_comparison = cold.compare_estimators()
        # Warm path: campaigns and every estimator's analysis come from disk.
        warm = execute_scenarios(tiny_scenarios(), store=store)
        counter = _FitCounter(monkeypatch)
        warm_comparison = warm.compare_estimators()
        assert counter.calls == 0
        assert warm_comparison.cells == cold_comparison.cells
        # A bootstrap comparison is a different analysis config: recomputed.
        warm.compare_estimators(estimators=["gumbel-pwm"], bootstrap=10)
        assert counter.calls > 0

    def test_warm_default_store_seeds_battery_for_other_estimators(
        self, tmp_path, monkeypatch
    ):
        store = ResultStore(tmp_path / "store")
        cold = execute_scenarios(tiny_scenarios(), store=store)
        cold.mbpta("rm")  # persist the default-estimator analyses
        import repro.study.resultset as resultset_module

        batteries = []
        original = resultset_module.apply_mbpta_batch

        def counting(rows, config=None, assessments=None, **kwargs):
            batteries.append(assessments is None)
            return original(rows, config=config, assessments=assessments, **kwargs)

        monkeypatch.setattr(resultset_module, "apply_mbpta_batch", counting)
        warm = execute_scenarios(tiny_scenarios(), store=store)
        warm.compare_estimators(estimators=["gumbel-pwm", "gumbel-mle"])
        # gumbel-pwm resolves from the store; its persisted assessments are
        # reused, so the gumbel-mle pass never re-runs the battery.
        assert batteries == [False]

    def test_compare_estimators_rejects_empty_sets(self):
        results = execute_scenarios(tiny_scenarios(runs=10))
        with pytest.raises(ValueError, match="MBPTA minimum"):
            results.compare_estimators()

    @pytest.mark.slow
    def test_second_table2_run_fits_nothing(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        study = get_study("table2")
        study.run(self.SETTINGS, store=store)
        counter = _FitCounter(monkeypatch)
        warm = study.run(self.SETTINGS, store=store)
        assert warm.report.full_cache_hit
        assert counter.calls == 0
