"""The two-tier placement-map cache (repro.engine.mapcache).

The maps themselves are pure functions pinned by the placement tests; what
these tests certify is the *caching*: memory hits return the shared frozen
array, disk entries round-trip through the bit-packed format, corrupt
entries self-heal instead of poisoning results, and concurrent writers race
benignly through the atomic-rename protocol.
"""

import threading

import numpy as np
import pytest

from repro.core.placement import PlacementGeometry, make_placement
from repro.engine import mapcache
from repro.engine.mapcache import (
    cached_set_index_matrix,
    configure_map_cache,
    map_cache_stats,
    map_digest,
    reset_map_cache,
)

LINES = np.arange(64, dtype=np.uint64) * 32 + 0x40000000
SEEDS = [1, 2, 0xDEADBEEF]


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path):
    """Point the module's global cache at a temp dir, restore after."""
    saved = (
        mapcache._disk_dir,
        mapcache._dir_pinned,
        mapcache._memory_entries,
        mapcache._enabled,
    )
    reset_map_cache()
    directory = tmp_path / "maps"
    configure_map_cache(directory=directory, memory_entries=32, enabled=True)
    yield directory
    reset_map_cache()
    (
        mapcache._disk_dir,
        mapcache._dir_pinned,
        mapcache._memory_entries,
        mapcache._enabled,
    ) = saved


def _policy(name="rm", num_sets=16, seed=0):
    geometry = PlacementGeometry(num_sets=num_sets, line_size=32, address_bits=32)
    return make_placement(name, geometry, seed=seed)


class TestTiers:
    def test_values_match_the_uncached_build(self):
        policy = _policy()
        cached = cached_set_index_matrix(policy, LINES, SEEDS)
        direct = policy.set_index_matrix(LINES, list(SEEDS))
        assert cached.shape == (len(LINES), len(SEEDS))
        assert (cached.astype(np.int64) == direct.astype(np.int64)).all()

    def test_memory_hit_returns_the_shared_frozen_array(self):
        policy = _policy()
        first = cached_set_index_matrix(policy, LINES, SEEDS)
        second = cached_set_index_matrix(policy, LINES, SEEDS)
        assert second is first  # the LRU shares, it does not copy
        assert not first.flags.writeable
        stats = map_cache_stats()
        assert stats["misses"] == 1
        assert stats["memory_hits"] == 1
        assert stats["disk_writes"] == 1

    def test_disk_hit_after_the_memory_tier_is_dropped(self):
        policy = _policy()
        first = cached_set_index_matrix(policy, LINES, SEEDS).copy()
        reset_map_cache(stats=False)  # drop memory, keep the disk entry
        again = cached_set_index_matrix(policy, LINES, SEEDS)
        assert (again == first).all()
        assert map_cache_stats()["disk_hits"] == 1
        assert map_cache_stats()["misses"] == 1  # only the original build

    def test_narrow_dtype_storage(self):
        assert cached_set_index_matrix(_policy(num_sets=16), LINES, SEEDS).dtype == np.uint8
        assert (
            cached_set_index_matrix(_policy(num_sets=1024), LINES, SEEDS).dtype
            == np.uint16
        )

    def test_digest_separates_policy_lines_and_seeds(self):
        policy = _policy()
        base = map_digest(policy, LINES, SEEDS)
        assert map_digest(policy, LINES, [9, 10]) != base
        assert map_digest(policy, LINES[:32], SEEDS) != base
        assert map_digest(_policy(num_sets=64), LINES, SEEDS) != base
        assert map_digest(_policy(name="hrp"), LINES, SEEDS) != base

    def test_disabled_cache_bypasses_both_tiers(self, isolated_cache):
        configure_map_cache(enabled=False)
        policy = _policy()
        first = cached_set_index_matrix(policy, LINES, SEEDS)
        second = cached_set_index_matrix(policy, LINES, SEEDS)
        assert (first == second).all() and first is not second
        assert not any(isolated_cache.glob("*.map"))
        assert map_cache_stats()["misses"] == 0


class TestSelfHealing:
    def _corrupt(self, directory, mutate):
        (entry,) = directory.glob("*.map")
        mutate(entry)
        return entry

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda path: path.write_bytes(b"garbage"),
            lambda path: path.write_bytes(path.read_bytes()[:-3]),  # truncated
            lambda path: path.write_bytes(
                path.read_bytes()[:-1] + bytes([path.read_bytes()[-1] ^ 0xFF])
            ),  # bit flip in the payload
        ],
        ids=["bad-magic", "truncated", "bit-flip"],
    )
    def test_corrupt_entries_count_as_misses_and_are_rewritten(
        self, isolated_cache, mutate
    ):
        policy = _policy()
        want = cached_set_index_matrix(policy, LINES, SEEDS).copy()
        self._corrupt(isolated_cache, mutate)
        reset_map_cache(stats=False)
        healed = cached_set_index_matrix(policy, LINES, SEEDS)
        assert (healed == want).all()
        assert map_cache_stats()["corrupt"] == 1
        # The rebuild rewrote the entry: a third pass hits clean disk.
        reset_map_cache(stats=False)
        assert (cached_set_index_matrix(policy, LINES, SEEDS) == want).all()
        assert map_cache_stats()["corrupt"] == 1
        assert map_cache_stats()["disk_hits"] == 1

    def test_geometry_mismatch_is_treated_as_corruption(self, isolated_cache):
        policy = _policy()
        cached_set_index_matrix(policy, LINES, SEEDS)
        (entry,) = isolated_cache.glob("*.map")
        # Forge a different geometry under the same digest name.
        other = _policy(num_sets=64)
        reset_map_cache(stats=False)
        cached_set_index_matrix(other, LINES, SEEDS)
        forged = [p for p in isolated_cache.glob("*.map") if p != entry]
        entry.write_bytes(forged[0].read_bytes())
        reset_map_cache(stats=False)
        healed = cached_set_index_matrix(policy, LINES, SEEDS)
        assert (healed.astype(np.int64) < 16).all()
        assert map_cache_stats()["corrupt"] == 1


class TestConcurrency:
    def test_concurrent_writers_race_benignly(self, isolated_cache):
        """Many threads building the same missing map: the atomic rename
        protocol means every thread ends with identical bytes on disk and
        identical values in hand."""
        configure_map_cache(memory_entries=0)  # force every call to disk
        policy = _policy()
        results = []
        errors = []
        barrier = threading.Barrier(8)

        def worker():
            try:
                barrier.wait(timeout=30)
                results.append(cached_set_index_matrix(policy, LINES, SEEDS))
            except Exception as error:  # pragma: no cover - failure detail
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(results) == 8
        baseline = results[0]
        for matrix in results[1:]:
            assert (matrix == baseline).all()
        # No temp files left behind; the surviving entry reads back clean.
        assert not list(isolated_cache.glob("*.tmp"))
        reset_map_cache(stats=False)
        final = cached_set_index_matrix(policy, LINES, SEEDS)
        assert (final == baseline).all()

    def test_memory_lru_is_bounded(self):
        configure_map_cache(memory_entries=2)
        policies = [_policy(num_sets=sets) for sets in (8, 16, 32, 64)]
        for policy in policies:
            cached_set_index_matrix(policy, LINES, SEEDS)
        assert len(mapcache._memory) == 2
