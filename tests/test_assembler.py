"""Tests for the TISA assembler and program container."""

import pytest

from repro.cpu.assembler import AssemblyError, ProgramBuilder, assemble
from repro.cpu.isa import INSTRUCTION_SIZE, Instruction, Opcode


class TestInstruction:
    def test_register_range_checked(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rd=32)

    def test_branch_needs_target_or_label(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BEQ)

    def test_describe_formats(self):
        assert Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3).describe() == "add r1, r2, r3"
        assert Instruction(Opcode.LD, rd=1, rs1=2, imm=8).describe() == "ld r1, r2, 8"
        assert Instruction(Opcode.NOP).describe() == "nop"

    def test_opcode_classes(self):
        assert Opcode.ADD.is_alu
        assert Opcode.LD.is_memory
        assert Opcode.BEQ.is_branch
        assert not Opcode.HALT.is_alu


class TestProgramBuilder:
    def test_labels_resolve_to_addresses(self):
        builder = ProgramBuilder()
        builder.label("start")
        builder.nop()
        builder.jump("start")
        builder.halt()
        program = builder.build()
        assert program.instructions[1].target == program.code_base

    def test_duplicate_label_rejected(self):
        builder = ProgramBuilder()
        builder.label("x")
        builder.nop()
        with pytest.raises(AssemblyError):
            builder.label("x")

    def test_undefined_label_rejected(self):
        builder = ProgramBuilder()
        builder.jump("nowhere")
        with pytest.raises(AssemblyError):
            builder.build()

    def test_branch_helper_rejects_jmp(self):
        builder = ProgramBuilder()
        with pytest.raises(AssemblyError):
            builder.branch(Opcode.JMP, 0, 0, "label")

    def test_address_index_roundtrip(self):
        builder = ProgramBuilder()
        builder.nop(5)
        builder.halt()
        program = builder.build()
        for index in range(len(program)):
            assert program.index_of(program.address_of(index)) == index

    def test_index_of_rejects_out_of_range(self):
        program = ProgramBuilder().build()
        with pytest.raises(ValueError):
            program.index_of(0x1234_5678)


class TestTextAssembler:
    def test_simple_program(self):
        program = assemble(
            """
            ; count down from 3
                li   r1, 3
            loop:
                addi r1, r1, -1
                bne  r1, r0, loop
                halt
            """
        )
        assert len(program) == 4
        assert program.instructions[0].opcode == Opcode.LUI
        assert program.instructions[2].label == "loop"
        assert program.instructions[2].target == program.code_base + INSTRUCTION_SIZE

    def test_comments_and_blank_lines_ignored(self):
        program = assemble("# only comments\n\n; nothing\nhalt\n")
        assert len(program) == 1

    def test_ld_st_operand_order(self):
        program = assemble("ld r2, r1, 8\nst r3, r1, 12\nhalt")
        load, store = program.instructions[0], program.instructions[1]
        assert (load.rd, load.rs1, load.imm) == (2, 1, 8)
        assert (store.rs2, store.rs1, store.imm) == (3, 1, 12)

    def test_hex_immediates(self):
        program = assemble("li r1, 0x40100000\nhalt")
        assert program.instructions[0].imm == 0x40100000

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate r1, r2, r3")

    def test_bad_register_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, x2, r3")

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2")

    def test_listing_contains_labels_and_addresses(self):
        program = assemble("start:\n nop\n jmp start\n halt", name="listing")
        listing = program.listing()
        assert "start:" in listing
        assert "jmp start" in listing
        assert f"{program.code_base:#010x}" in listing
