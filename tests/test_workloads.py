"""Tests for the workload generators (EEMBC stand-ins, synthetic kernel, layouts)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.base import (
    ACCESS_PATTERNS,
    KernelSpec,
    MemoryLayout,
    build_kernel_trace,
    random_layouts,
)
from repro.workloads.eembc import (
    EEMBC_INITIALS,
    EEMBC_KERNELS,
    eembc_kernel_names,
    eembc_spec,
    eembc_trace,
)
from repro.workloads.synthetic import (
    SYNTHETIC_FOOTPRINTS,
    synthetic_footprint_trace,
    synthetic_vector_trace,
)


class TestMemoryLayout:
    def test_shifted(self):
        layout = MemoryLayout().shifted(code_shift=0x100, data_shift=0x200)
        assert layout.code_base == MemoryLayout().code_base + 0x100
        assert layout.data_base == MemoryLayout().data_base + 0x200

    def test_random_layouts_are_reproducible(self):
        assert random_layouts(5, master_seed=3) == random_layouts(5, master_seed=3)

    def test_random_layouts_respect_granularity(self):
        base = MemoryLayout()
        for layout in random_layouts(20, master_seed=1, granularity=64, span=1024):
            assert (layout.code_base - base.code_base) % 64 == 0
            assert 0 <= layout.code_base - base.code_base < 1024

    def test_random_layouts_vary(self):
        layouts = random_layouts(20, master_seed=2)
        assert len({layout.data_base for layout in layouts}) > 1

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            random_layouts(-1)
        with pytest.raises(ValueError):
            random_layouts(1, granularity=0)


class TestKernelSpec:
    def test_footprints(self):
        spec = KernelSpec(
            name="k", description="", code_bytes=1024, table_bytes=(2048, 512),
            state_bytes=128, iterations=4, loads_per_iteration=4, stores_per_iteration=1,
        )
        assert spec.data_bytes == 2048 + 512 + 128
        assert spec.footprint_bytes == spec.data_bytes + 1024

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec(
                name="k", description="", code_bytes=64, table_bytes=(64,),
                state_bytes=0, iterations=1, loads_per_iteration=1,
                stores_per_iteration=0, pattern="zigzag",
            )

    def test_bad_code_fraction_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec(
                name="k", description="", code_bytes=64, table_bytes=(),
                state_bytes=0, iterations=1, loads_per_iteration=1,
                stores_per_iteration=0, code_fraction=0.0,
            )

    def test_scaled_changes_iterations_only(self):
        spec = eembc_spec("a2time")
        scaled = spec.scaled(0.5)
        assert scaled.iterations == max(1, round(spec.iterations * 0.5))
        assert scaled.code_bytes == spec.code_bytes

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError):
            eembc_spec("a2time").scaled(0)


class TestKernelTraceGeneration:
    @pytest.mark.parametrize("pattern", ACCESS_PATTERNS)
    def test_every_pattern_generates_accesses(self, pattern):
        spec = KernelSpec(
            name=f"k_{pattern}", description="", code_bytes=256,
            table_bytes=(1024,), state_bytes=64, iterations=8,
            loads_per_iteration=6, stores_per_iteration=2, pattern=pattern, stride=32,
        )
        trace = build_kernel_trace(spec)
        counts = trace.counts()
        assert counts["loads"] == 6 * 8
        assert counts["stores"] == 2 * 8
        assert counts["fetches"] == (256 // 4) * 8

    def test_trace_is_deterministic(self):
        spec = eembc_spec("tblook")
        a = build_kernel_trace(spec)
        b = build_kernel_trace(spec)
        assert a.addresses == b.addresses and a.kinds == b.kinds

    def test_layout_shifts_addresses(self):
        spec = eembc_spec("a2time")
        base = build_kernel_trace(spec)
        shifted = build_kernel_trace(spec, layout=MemoryLayout().shifted(data_shift=0x400))
        assert base.addresses != shifted.addresses
        assert len(base) == len(shifted)

    def test_scale_changes_length(self):
        spec = eembc_spec("rspeed")
        assert len(build_kernel_trace(spec, scale=0.5)) < len(build_kernel_trace(spec))

    def test_data_stays_within_declared_footprint(self):
        spec = eembc_spec("matrix")
        trace = build_kernel_trace(spec)
        layout = MemoryLayout()
        data_addresses = [
            address for kind, address in zip(trace.kinds, trace.addresses) if kind != 0
        ]
        assert min(data_addresses) >= layout.data_base
        assert max(data_addresses) < layout.data_base + spec.data_bytes


class TestEembcSuite:
    def test_eleven_kernels(self):
        assert len(EEMBC_KERNELS) == 11
        assert len(EEMBC_INITIALS) == 11
        assert set(EEMBC_INITIALS.values()) == set(EEMBC_KERNELS)

    def test_kernel_names_order(self):
        names = eembc_kernel_names()
        assert names[0] == "a2time"
        assert len(names) == 11

    def test_spec_lookup_by_initials(self):
        assert eembc_spec("TB").name == "tblook"
        assert eembc_spec("a2time").name == "a2time"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            eembc_spec("dhrystone")

    def test_all_kernels_generate_reasonable_traces(self):
        for name in eembc_kernel_names():
            trace = eembc_trace(name, scale=0.25)
            assert len(trace) > 500, name
            assert trace.counts()["fetches"] > 0
            assert trace.counts()["loads"] > 0

    def test_code_footprints_fit_one_l1_way(self):
        # Random Modulo guarantees conflict-free instruction placement as
        # long as the hot code fits the 4 KB cache segment; the stand-ins
        # respect that, as the real EEMBC inner loops do.
        for name, spec in EEMBC_KERNELS.items():
            assert spec.code_bytes <= 4096, name

    def test_data_footprints_are_diverse(self):
        footprints = {spec.data_bytes for spec in EEMBC_KERNELS.values()}
        assert max(footprints) > 8 * 1024
        assert min(footprints) < 2 * 1024


class TestSyntheticKernel:
    def test_three_paper_footprints(self):
        assert SYNTHETIC_FOOTPRINTS["fits_l1"] == 8 * 1024
        assert SYNTHETIC_FOOTPRINTS["fits_l2"] == 20 * 1024
        assert SYNTHETIC_FOOTPRINTS["exceeds_l2"] == 160 * 1024

    def test_footprint_is_respected(self):
        trace = synthetic_vector_trace(8 * 1024, iterations=2)
        data_lines = trace.split_by_kind(32)[1]
        assert len(data_lines) == 8 * 1024 // 32

    def test_iterations_scale_length(self):
        short = synthetic_vector_trace(4096, iterations=2)
        long = synthetic_vector_trace(4096, iterations=4)
        assert len(long) == 2 * len(short)

    def test_store_every(self):
        trace = synthetic_vector_trace(4096, iterations=1, store_every=4)
        assert trace.counts()["stores"] == (4096 // 32) // 4

    def test_variant_helper(self):
        trace = synthetic_footprint_trace("fits_l1", iterations=1)
        assert trace.name == "synthetic_fits_l1"

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            synthetic_footprint_trace("huge")

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            synthetic_vector_trace(0)
        with pytest.raises(ValueError):
            synthetic_vector_trace(1024, iterations=0)

    @given(footprint=st.sampled_from([2048, 4096, 8192]), iterations=st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_length_formula(self, footprint, iterations):
        trace = synthetic_vector_trace(footprint, iterations=iterations)
        elements = footprint // 32
        assert len(trace) == iterations * elements * 3  # 2 fetches + 1 load
