"""Tests for the ASIC/FPGA hardware cost models (Table 1)."""

import pytest

from repro.core.placement import PlacementGeometry
from repro.hardware.fpga import FpgaDevice, integrate_on_fpga
from repro.hardware.modules import (
    build_hrp_module,
    build_rm_module,
    hrp_module_cost,
    modulo_module_cost,
    rm_module_cost,
)
from repro.hardware.netlist import Netlist
from repro.hardware.technology import Cell, TechnologyLibrary, generic_45nm_library

L1_GEOMETRY = PlacementGeometry(num_sets=128, line_size=32)


class TestTechnology:
    def test_library_has_core_cells(self):
        library = generic_45nm_library()
        for cell in ("INV", "NAND2", "XOR2", "MUX2", "PASSGATE", "DFF"):
            assert library.cell(cell).area_um2 > 0

    def test_unknown_cell_rejected(self):
        with pytest.raises(KeyError):
            generic_45nm_library().cell("NAND17")

    def test_area_and_delay_helpers(self):
        library = generic_45nm_library()
        assert library.area("XOR2", 10) == pytest.approx(10 * library.cell("XOR2").area_um2)
        assert library.delay("XOR2", 2) > library.delay("XOR2", 1)

    def test_cell_validation(self):
        with pytest.raises(ValueError):
            Cell("BAD", area_um2=0.0, delay_ns=0.1)

    def test_wire_factor_validation(self):
        with pytest.raises(ValueError):
            TechnologyLibrary("x", {}, wire_delay_factor=0.5)


class TestNetlist:
    def test_area_and_depth_of_xor_tree(self):
        library = generic_45nm_library()
        netlist = Netlist("tree", library)
        inputs = netlist.add_inputs("a", 8)
        output = netlist.xor_tree(inputs)
        netlist.mark_output(output)
        assert netlist.gate_count() == 7
        assert netlist.logic_depth() == 3
        assert netlist.area_um2() == pytest.approx(7 * library.cell("XOR2").area_um2)

    def test_critical_path_accumulates_delay(self):
        library = generic_45nm_library()
        netlist = Netlist("chain", library)
        node = netlist.add_input("in")
        for _ in range(5):
            node = netlist.add_gate("INV", [node])
        per_gate = library.cell("INV").delay_ns * library.wire_delay_factor
        assert netlist.critical_path_ns() == pytest.approx(5 * per_gate)

    def test_duplicate_node_rejected(self):
        netlist = Netlist("dup", generic_45nm_library())
        netlist.add_input("a")
        with pytest.raises(ValueError):
            netlist.add_input("a")

    def test_unknown_fanin_rejected(self):
        netlist = Netlist("bad", generic_45nm_library())
        with pytest.raises(ValueError):
            netlist.add_gate("INV", ["ghost"])

    def test_report_round_trip(self):
        netlist = build_rm_module(L1_GEOMETRY)
        report = netlist.report()
        assert report.gate_count == netlist.gate_count()
        assert report.area_um2 == pytest.approx(netlist.area_um2())
        assert "PASSGATE" in report.cell_histogram


class TestModuleCosts:
    def test_rm_is_much_smaller_than_hrp(self):
        hrp = hrp_module_cost(L1_GEOMETRY)
        rm = rm_module_cost(L1_GEOMETRY)
        # Table 1: roughly an order of magnitude difference.
        assert hrp.logic_area_um2 / rm.logic_area_um2 > 5.0

    def test_rm_is_faster_than_hrp(self):
        hrp = hrp_module_cost(L1_GEOMETRY)
        rm = rm_module_cost(L1_GEOMETRY)
        # Table 1: ~27% delay reduction; accept anything clearly positive.
        reduction = 1.0 - rm.delay_ns / hrp.delay_ns
        assert 0.10 < reduction < 0.60

    def test_absolute_delays_in_table1_range(self):
        hrp = hrp_module_cost(L1_GEOMETRY)
        rm = rm_module_cost(L1_GEOMETRY)
        assert 0.3 < rm.delay_ns < 0.7
        assert 0.5 < hrp.delay_ns < 1.0

    def test_only_hrp_needs_tag_overhead(self):
        assert hrp_module_cost(L1_GEOMETRY).tag_overhead_bits > 0
        assert rm_module_cost(L1_GEOMETRY).tag_overhead_bits == 0

    def test_modulo_reference_has_no_logic(self):
        cost = modulo_module_cost(L1_GEOMETRY)
        assert cost.report.gate_count == 0
        assert cost.logic_area_um2 == 0.0

    def test_hrp_module_structure(self):
        netlist = build_hrp_module(L1_GEOMETRY)
        histogram = netlist.report().cell_histogram
        assert histogram["MUX2"] > histogram.get("XOR2", 0)  # barrel rotators dominate

    def test_rm_module_structure(self):
        histogram = build_rm_module(L1_GEOMETRY).report().cell_histogram
        assert histogram["PASSGATE"] == 2 * 21  # two pass legs per switch
        assert histogram["XOR2"] == 21

    def test_costs_scale_with_cache_size(self):
        small = rm_module_cost(PlacementGeometry(num_sets=64, line_size=32))
        large = rm_module_cost(PlacementGeometry(num_sets=1024, line_size=32))
        assert large.logic_area_um2 > small.logic_area_um2

    def test_as_dict_round_trip(self):
        data = hrp_module_cost(L1_GEOMETRY).as_dict()
        for key in ("logic_area_um2", "total_area_um2", "delay_ns", "gate_count"):
            assert key in data


class TestFpgaModel:
    def test_baseline_and_integrations(self):
        hrp = integrate_on_fpga(hrp_module_cost(L1_GEOMETRY))
        rm = integrate_on_fpga(rm_module_cost(L1_GEOMETRY))
        device = FpgaDevice()
        assert rm.occupancy > device.baseline_occupancy
        assert hrp.occupancy > rm.occupancy
        assert rm.frequency_mhz == device.baseline_frequency_mhz
        assert hrp.frequency_mhz < device.baseline_frequency_mhz

    def test_matches_table1_shape(self):
        hrp = integrate_on_fpga(hrp_module_cost(L1_GEOMETRY))
        rm = integrate_on_fpga(rm_module_cost(L1_GEOMETRY))
        assert 0.70 < rm.occupancy < 0.75
        assert 0.77 < hrp.occupancy < 0.85
        assert hrp.frequency_mhz == 80.0
        assert rm.frequency_mhz == 100.0

    def test_occupancy_is_capped_at_one(self):
        tiny_device = FpgaDevice(total_alms=2000)
        result = integrate_on_fpga(hrp_module_cost(L1_GEOMETRY), device=tiny_device)
        assert result.occupancy <= 1.0

    def test_device_validation(self):
        with pytest.raises(ValueError):
            FpgaDevice(baseline_occupancy=1.5)
        with pytest.raises(ValueError):
            FpgaDevice(total_alms=0)

    def test_as_dict(self):
        data = integrate_on_fpga(rm_module_cost(L1_GEOMETRY)).as_dict()
        assert data["frequency_mhz"] == 100.0
        assert "occupancy_percent" in data
