"""Tests for the placement policies (the paper's core contribution)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import (
    PLACEMENT_NAMES,
    DeterministicXorPlacement,
    HashRandomPlacement,
    ModuloPlacement,
    PlacementGeometry,
    RandomModuloPlacement,
    make_placement,
)

LEON3_L1 = PlacementGeometry(num_sets=128, line_size=32)


class TestGeometry:
    def test_leon3_l1_geometry(self):
        assert LEON3_L1.offset_bits == 5
        assert LEON3_L1.index_bits == 7
        assert LEON3_L1.upper_bits == 20
        assert LEON3_L1.segment_size == 4096

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            PlacementGeometry(num_sets=12, line_size=32)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            PlacementGeometry(num_sets=16, line_size=48)

    def test_rejects_too_narrow_addresses(self):
        with pytest.raises(ValueError):
            PlacementGeometry(num_sets=1 << 20, line_size=4096, address_bits=16)

    def test_modulo_index_and_segment(self):
        geometry = PlacementGeometry(num_sets=8, line_size=32)
        assert geometry.modulo_index(0) == 0
        assert geometry.modulo_index(32) == 1
        assert geometry.modulo_index(8 * 32) == 0
        assert geometry.segment_of(0) == 0
        assert geometry.segment_of(8 * 32) == 1


class TestFactory:
    def test_all_names_constructible(self):
        for name in PLACEMENT_NAMES:
            policy = make_placement(name, LEON3_L1, seed=1)
            assert policy.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_placement("random-banana", LEON3_L1)

    def test_case_insensitive(self):
        assert make_placement("RM", LEON3_L1).name == "rm"


class TestModulo:
    def test_consecutive_lines_consecutive_sets(self):
        policy = ModuloPlacement(LEON3_L1)
        indices = [policy.set_index(line * 32) for line in range(128)]
        assert indices == list(range(128))

    def test_reseed_is_noop(self):
        policy = ModuloPlacement(LEON3_L1)
        before = [policy.set_index(a) for a in range(0, 8192, 32)]
        policy.reseed(123456)
        assert [policy.set_index(a) for a in range(0, 8192, 32)] == before

    def test_tag_excludes_index(self):
        policy = ModuloPlacement(LEON3_L1)
        assert not policy.needs_index_in_tag
        assert policy.tag(0x40000000) == 0x40000000 >> 12


class TestDeterministicXor:
    def test_deterministic_across_seeds(self):
        policy = DeterministicXorPlacement(LEON3_L1)
        before = [policy.set_index(a) for a in range(0, 1 << 16, 32)]
        policy.reseed(99)
        assert [policy.set_index(a) for a in range(0, 1 << 16, 32)] == before

    def test_indices_in_range(self):
        policy = DeterministicXorPlacement(LEON3_L1)
        for address in range(0, 1 << 16, 4096 + 32):
            assert 0 <= policy.set_index(address) < 128


class TestHashRandomPlacement:
    def test_same_seed_same_mapping(self):
        a = HashRandomPlacement(LEON3_L1, seed=5)
        b = HashRandomPlacement(LEON3_L1, seed=5)
        addresses = range(0x40000000, 0x40008000, 32)
        assert [a.set_index(x) for x in addresses] == [b.set_index(x) for x in addresses]

    def test_different_seeds_give_different_mapping(self):
        a = HashRandomPlacement(LEON3_L1, seed=5)
        b = HashRandomPlacement(LEON3_L1, seed=6)
        addresses = list(range(0x40000000, 0x40008000, 32))
        assert [a.set_index(x) for x in addresses] != [b.set_index(x) for x in addresses]

    def test_needs_index_in_tag(self):
        policy = HashRandomPlacement(LEON3_L1, seed=1)
        assert policy.needs_index_in_tag
        assert policy.tag(0x40000020) == (0x40000020 >> 5)

    def test_indices_in_range(self):
        policy = HashRandomPlacement(LEON3_L1, seed=11)
        assert all(
            0 <= policy.set_index(a) < 128 for a in range(0, 1 << 16, 1024 + 32)
        )

    def test_roughly_uniform_over_sets(self):
        policy = HashRandomPlacement(LEON3_L1, seed=3)
        counts = [0] * 128
        addresses = range(0x40000000, 0x40000000 + 128 * 32 * 64, 32)
        for address in addresses:
            counts[policy.set_index(address)] += 1
        # 8192 lines over 128 sets: expect 64 per set; allow a wide band.
        assert max(counts) < 64 * 2
        assert min(counts) > 64 // 3

    def test_same_offset_same_line_same_set(self):
        policy = HashRandomPlacement(LEON3_L1, seed=7)
        assert policy.set_index(0x40000000) == policy.set_index(0x4000001F)

    def test_neighbouring_lines_can_collide_across_seeds(self):
        # Section 3.1: with hRP even contiguous lines have probability ~1/S
        # of sharing a set; across many seeds some collision must show up.
        collisions = 0
        for seed in range(400):
            policy = HashRandomPlacement(LEON3_L1, seed=seed)
            if policy.set_index(0x40000000) == policy.set_index(0x40000020):
                collisions += 1
        assert collisions > 0

    @given(seed=st.integers(0, 2**32 - 1), line=st.integers(0, 2**20))
    @settings(max_examples=50)
    def test_index_range_property(self, seed, line):
        policy = HashRandomPlacement(LEON3_L1, seed=seed)
        assert 0 <= policy.set_index(line * 32) < 128


class TestRandomModulo:
    def test_same_seed_same_mapping(self):
        a = RandomModuloPlacement(LEON3_L1, seed=5)
        b = RandomModuloPlacement(LEON3_L1, seed=5)
        addresses = range(0x40000000, 0x40008000, 32)
        assert [a.set_index(x) for x in addresses] == [b.set_index(x) for x in addresses]

    def test_reseed_changes_mapping(self):
        policy = RandomModuloPlacement(LEON3_L1, seed=5)
        addresses = list(range(0x40000000, 0x40010000, 32))
        before = [policy.set_index(x) for x in addresses]
        policy.reseed(6)
        assert [policy.set_index(x) for x in addresses] != before

    def test_no_index_in_tag(self):
        assert not RandomModuloPlacement(LEON3_L1, seed=1).needs_index_in_tag

    def test_segment_is_mapped_bijectively(self):
        # The key theorem of Section 3.2: addresses of one cache segment that
        # differ under modulo can never collide under RM, for any seed.
        for seed in (0, 1, 17, 0xDEADBEEF):
            policy = RandomModuloPlacement(LEON3_L1, seed=seed)
            segment_base = 0x40003000 & ~(LEON3_L1.segment_size - 1)
            indices = [
                policy.set_index(segment_base + line * 32) for line in range(128)
            ]
            assert sorted(indices) == list(range(128)), f"seed {seed} broke the bijection"

    @given(
        seed=st.integers(0, 2**64 - 1),
        segment=st.integers(0, 2**15),
        line_a=st.integers(0, 127),
        line_b=st.integers(0, 127),
    )
    @settings(max_examples=120)
    def test_segment_conflict_freedom_property(self, seed, segment, line_a, line_b):
        policy = RandomModuloPlacement(LEON3_L1, seed=seed)
        base = segment * LEON3_L1.segment_size
        address_a = base + line_a * 32
        address_b = base + line_b * 32
        if line_a != line_b:
            assert policy.set_index(address_a) != policy.set_index(address_b)
        else:
            assert policy.set_index(address_a) == policy.set_index(address_b)

    @given(seed=st.integers(0, 2**64 - 1), address=st.integers(0, 2**32 - 1))
    @settings(max_examples=100)
    def test_index_in_range_property(self, seed, address):
        policy = RandomModuloPlacement(LEON3_L1, seed=seed)
        assert 0 <= policy.set_index(address) < 128

    def test_different_segments_get_different_permutations(self):
        policy = RandomModuloPlacement(LEON3_L1, seed=42)
        mappings = set()
        for segment in range(32):
            base = segment * LEON3_L1.segment_size
            mappings.add(tuple(policy.set_index(base + line * 32) for line in range(8)))
        # Not all segments may differ, but they must not all be identical.
        assert len(mappings) > 1

    def test_power_of_two_index_uses_benes(self):
        # 256 sets -> 8 index bits -> the 8-wide Benes network with the 20
        # control bits quoted in Section 3.2 of the paper.
        geometry = PlacementGeometry(num_sets=256, line_size=32)
        policy = RandomModuloPlacement(geometry, seed=1)
        assert policy.network.num_switches == 20

    def test_network_width_mismatch_rejected(self):
        from repro.core.benes import BenesNetwork

        with pytest.raises(ValueError):
            RandomModuloPlacement(LEON3_L1, seed=1, network=BenesNetwork(8))

    def test_describe_contains_policy_name(self):
        description = RandomModuloPlacement(LEON3_L1, seed=1).describe()
        assert description["policy"] == "rm"
        assert description["num_sets"] == 128
