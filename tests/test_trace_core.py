"""Tests for the trace-driven timing core."""

import pytest

from repro.cpu.core import ExecutionTimingModel, TraceDrivenCore
from repro.cpu.trace import Trace


class TestTraceDrivenCore:
    def test_fast_and_reference_engines_agree(self, small_kernel_trace, tiny_hierarchy_config):
        core = TraceDrivenCore(tiny_hierarchy_config, small_kernel_trace)
        for seed in (0, 5, 99):
            assert core.run(seed, engine="fast").as_dict() == core.run(
                seed, engine="reference"
            ).as_dict()

    def test_unknown_engine_rejected(self, small_kernel_trace, tiny_hierarchy_config):
        core = TraceDrivenCore(tiny_hierarchy_config, small_kernel_trace)
        with pytest.raises(ValueError):
            core.run(0, engine="gpu")

    def test_overhead_model_adds_fixed_cycles(self, small_kernel_trace, tiny_hierarchy_config):
        plain = TraceDrivenCore(tiny_hierarchy_config, small_kernel_trace)
        with_overhead = TraceDrivenCore(
            tiny_hierarchy_config,
            small_kernel_trace,
            timing=ExecutionTimingModel(fetch_overhead=1, data_overhead=2),
        )
        counts = small_kernel_trace.counts()
        expected_extra = counts["fetches"] + 2 * (counts["loads"] + counts["stores"])
        assert (
            with_overhead.run_fast(7).cycles - plain.run_fast(7).cycles == expected_extra
        )

    def test_empty_trace_runs(self, tiny_hierarchy_config):
        core = TraceDrivenCore(tiny_hierarchy_config, Trace(name="empty"))
        result = core.run_fast(0)
        assert result.cycles == 0
        assert result.accesses == 0

    def test_result_accessor_counts_match_trace(self, small_kernel_trace, tiny_hierarchy_config):
        core = TraceDrivenCore(tiny_hierarchy_config, small_kernel_trace)
        result = core.run_fast(1)
        assert result.accesses == len(small_kernel_trace)
        assert result.il1_misses >= 0 and result.dl1_misses >= 0

    def test_compiled_trace_is_reused_across_runs(self, small_kernel_trace, tiny_hierarchy_config):
        core = TraceDrivenCore(tiny_hierarchy_config, small_kernel_trace)
        core.run_fast(0)
        first_compiled = core._compiled
        core.run_fast(1)
        assert core._compiled is first_compiled
