"""Tests for the replacement policies."""

import pytest

from repro.cache.replacement import (
    REPLACEMENT_NAMES,
    FifoReplacement,
    LruReplacement,
    RandomReplacement,
    TreePlruReplacement,
    make_replacement,
)


class TestFactory:
    def test_all_names_constructible(self):
        for name in REPLACEMENT_NAMES:
            policy = make_replacement(name, num_sets=4, num_ways=4, seed=1)
            assert policy.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_replacement("mru", 4, 4)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            LruReplacement(0, 4)


class TestLru:
    def test_initial_victim_is_way_zero(self):
        policy = LruReplacement(2, 4)
        assert policy.victim(0) == 0

    def test_touch_moves_to_mru(self):
        policy = LruReplacement(1, 4)
        policy.touch(0, 0)
        assert policy.victim(0) == 1

    def test_full_access_sequence(self):
        policy = LruReplacement(1, 4)
        for way in (0, 1, 2, 3):
            policy.touch(0, way)
        policy.touch(0, 0)  # 0 becomes MRU again
        assert policy.victim(0) == 1

    def test_sets_are_independent(self):
        policy = LruReplacement(2, 2)
        policy.touch(0, 0)
        assert policy.victim(1) == 0

    def test_reset_restores_initial_order(self):
        policy = LruReplacement(1, 4)
        policy.touch(0, 0)
        policy.reset()
        assert policy.victim(0) == 0


class TestRandom:
    def test_victims_in_range(self):
        policy = RandomReplacement(4, 4, seed=9)
        assert all(0 <= policy.victim(0) < 4 for _ in range(200))

    def test_reproducible_per_seed(self):
        a = RandomReplacement(1, 4, seed=3)
        b = RandomReplacement(1, 4, seed=3)
        assert [a.victim(0) for _ in range(50)] == [b.victim(0) for _ in range(50)]

    def test_reseed_changes_sequence(self):
        policy = RandomReplacement(1, 4, seed=3)
        first = [policy.victim(0) for _ in range(50)]
        policy.reseed(4)
        assert [policy.victim(0) for _ in range(50)] != first

    def test_covers_all_ways(self):
        policy = RandomReplacement(1, 4, seed=1)
        assert {policy.victim(0) for _ in range(200)} == {0, 1, 2, 3}

    def test_touch_is_noop(self):
        policy = RandomReplacement(1, 2, seed=1)
        policy.touch(0, 1)  # must not raise


class TestFifo:
    def test_round_robin(self):
        policy = FifoReplacement(1, 3)
        assert [policy.victim(0) for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_reset(self):
        policy = FifoReplacement(1, 3)
        policy.victim(0)
        policy.reset()
        assert policy.victim(0) == 0


class TestTreePlru:
    def test_requires_power_of_two_ways(self):
        with pytest.raises(ValueError):
            TreePlruReplacement(1, 3)

    def test_victim_in_range(self):
        policy = TreePlruReplacement(1, 8)
        assert 0 <= policy.victim(0) < 8

    def test_recently_touched_way_is_protected(self):
        policy = TreePlruReplacement(1, 4)
        for _ in range(10):
            policy.touch(0, 2)
            assert policy.victim(0) != 2

    def test_cycle_through_touches_is_fair(self):
        policy = TreePlruReplacement(1, 4)
        victims = set()
        for round_index in range(4):
            for way in range(4):
                if way != round_index:
                    policy.touch(0, way)
            victims.add(policy.victim(0))
        assert len(victims) >= 2
