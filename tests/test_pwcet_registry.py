"""Tests for the pWCET estimator registry and the built-in estimators."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.pwcet import (
    Estimator,
    ExponentialTailFit,
    MbptaConfig,
    TailEstimate,
    apply_mbpta,
    available_estimators,
    estimator_capabilities,
    get_estimator,
    register_estimator,
    unregister_estimator,
)


def gumbel_sample(n, seed=0, loc=20000.0, scale=300.0):
    rng = np.random.default_rng(seed)
    return list(scipy_stats.gumbel_r.rvs(loc=loc, scale=scale, size=n, random_state=rng))


class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_estimators()) >= {
            "gumbel-pwm",
            "gumbel-mle",
            "exponential-excess",
        }

    def test_unknown_estimator_lists_registered(self):
        with pytest.raises(ValueError, match="registered estimators.*gumbel-pwm"):
            get_estimator("weibull")

    def test_capability_matrix(self):
        capabilities = estimator_capabilities()
        assert capabilities["gumbel-pwm"]["supports_batch"]
        assert capabilities["gumbel-pwm"]["needs_block_maxima"]
        assert not capabilities["gumbel-mle"]["supports_batch"]
        assert not capabilities["exponential-excess"]["needs_block_maxima"]

    def test_register_requires_concrete_name(self):
        class Nameless(Estimator):
            def fit(self, samples, config):  # pragma: no cover - never called
                raise NotImplementedError

        with pytest.raises(ValueError, match="concrete name"):
            register_estimator(Nameless())

    def test_duplicate_registration_needs_replace(self):
        with pytest.raises(ValueError, match="already registered"):
            register_estimator(get_estimator("gumbel-pwm"))
        register_estimator(get_estimator("gumbel-pwm"), replace=True)

    def test_custom_estimator_round_trip(self):
        class Constant(Estimator):
            name = "constant-test"

            def fit(self, samples, config):
                from repro.pwcet import GumbelFit, PWcetCurve

                fit = GumbelFit(location=float(max(samples)), scale=1.0)
                return TailEstimate(fit=fit, curve=PWcetCurve(fit=fit))

        register_estimator(Constant())
        try:
            result = apply_mbpta(gumbel_sample(100), estimator="constant-test")
            assert result.estimator == "constant-test"
        finally:
            unregister_estimator("constant-test")
        assert "constant-test" not in available_estimators()


class TestConfigResolution:
    def test_legacy_fit_method_aliases(self):
        assert MbptaConfig(fit_method="pwm").estimator_name == "gumbel-pwm"
        assert MbptaConfig(fit_method="mle").estimator_name == "gumbel-mle"
        assert (
            MbptaConfig(fit_method="exponential-excess").estimator_name
            == "exponential-excess"
        )

    def test_unknown_estimator_raises_at_apply(self):
        with pytest.raises(ValueError, match="registered estimators"):
            apply_mbpta(gumbel_sample(50), estimator="weibull")

    def test_analysis_hash_depends_on_estimator(self):
        base = MbptaConfig()
        assert base.analysis_hash() != MbptaConfig(fit_method="mle").analysis_hash()
        assert base.analysis_hash() == MbptaConfig(fit_method="gumbel-pwm").analysis_hash()
        assert base.analysis_hash() != MbptaConfig(bootstrap=50).analysis_hash()

    def test_bootstrap_must_be_non_negative(self):
        with pytest.raises(ValueError):
            MbptaConfig(bootstrap=-1)


class TestGumbelEstimators:
    def test_pwm_is_the_default(self):
        samples = gumbel_sample(300, seed=1)
        assert apply_mbpta(samples).estimator == "gumbel-pwm"

    def test_registry_name_matches_legacy_fit_method(self):
        samples = gumbel_sample(300, seed=2)
        by_alias = apply_mbpta(samples, config=MbptaConfig(fit_method="mle"))
        by_name = apply_mbpta(samples, estimator="gumbel-mle")
        assert by_alias.fit == by_name.fit
        assert by_alias.pwcet == by_name.pwcet
        assert by_name.estimator == "gumbel-mle"

    def test_mle_differs_from_pwm(self):
        samples = gumbel_sample(300, seed=3)
        pwm = apply_mbpta(samples, estimator="gumbel-pwm")
        mle = apply_mbpta(samples, estimator="gumbel-mle")
        assert pwm.fit.location != mle.fit.location


class TestExponentialExcess:
    def test_pwcet_exceeds_observations(self):
        samples = gumbel_sample(400, seed=4)
        result = apply_mbpta(samples, estimator="exponential-excess")
        assert result.estimator == "exponential-excess"
        assert isinstance(result.fit, ExponentialTailFit)
        assert result.pwcet_at(1e-15) > max(samples)
        assert result.pwcet_at(1e-15) > result.pwcet_at(1e-12)

    def test_no_discarded_runs(self):
        # 25 runs is not a multiple of the effective block size, but a
        # peaks-over-threshold estimator consumes the raw sample.
        result = apply_mbpta(gumbel_sample(25, seed=5), estimator="exponential-excess")
        assert result.discarded_runs == 0

    def test_quantile_inverts_survival_in_tail(self):
        fit = ExponentialTailFit(threshold=1000.0, scale=25.0, exceedance_rate=0.25)
        for probability in (1e-3, 1e-9, 1e-15):
            assert fit.survival(fit.quantile(probability)) == pytest.approx(
                probability, rel=1e-9
            )

    def test_quantile_clamps_to_threshold_outside_tail(self):
        fit = ExponentialTailFit(threshold=1000.0, scale=25.0, exceedance_rate=0.25)
        assert fit.quantile(0.5) == 1000.0

    def test_degenerate_sample_pins_to_maximum(self):
        result = apply_mbpta([4321.0] * 60, estimator="exponential-excess")
        assert result.pwcet_at(1e-15) == pytest.approx(4321.0, rel=1e-6)

    def test_ccdf_points_monotone(self):
        result = apply_mbpta(gumbel_sample(400, seed=6), estimator="exponential-excess")
        points = result.curve.ccdf_points(min_probability=1e-16, points_per_decade=2)
        values = [value for value, _ in points]
        assert values == sorted(values)

    def test_summary_labels_fit_parameters_neutrally(self):
        samples = gumbel_sample(300, seed=7)
        pot = apply_mbpta(samples, estimator="exponential-excess").summary()
        assert pot["fit_location"] == pytest.approx(
            apply_mbpta(samples, estimator="exponential-excess").fit.threshold
        )
        # No gumbel_* keys for a non-Gumbel fit; kept for Gumbel estimators.
        assert "gumbel_location" not in pot
        gumbel = apply_mbpta(samples).summary()
        assert gumbel["gumbel_location"] == gumbel["fit_location"]
