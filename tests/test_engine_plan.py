"""Unit tests of the trace plan compiler (repro.engine.plan).

The cross-engine suite certifies that plan execution matches the fast
engine bit-exactly; these tests pin the compiler's *derived structure*
directly — which accesses are elided and under which rule, where dirty
bits fold, when guarantees are dropped, and when a whole hierarchy is
proven seed-invariant — so a regression shows up as a readable structural
diff instead of a counter mismatch three layers down.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import CacheConfig
from repro.cache.fastsim import CompiledTrace
from repro.cache.hierarchy import HierarchyConfig, MemoryTimings
from repro.cpu.trace import Trace
from repro.engine.plan import PlanUnsupported, compile_plan


def make_config(
    l1_placement="modulo",
    l1_replacement="random",
    l1_write="write-through",
    with_l2=False,
    ways=2,
    num_sets=8,
):
    cache = dict(
        size_bytes=ways * 32 * num_sets, ways=ways, line_size=32,
        placement=l1_placement, replacement=l1_replacement,
        write_policy=l1_write,
    )
    l2 = (
        CacheConfig(
            name="L2", size_bytes=2048, ways=4, line_size=32,
            placement="modulo", replacement="random", write_policy="write-back",
        )
        if with_l2
        else None
    )
    return HierarchyConfig(
        il1=CacheConfig(name="IL1", **cache),
        dl1=CacheConfig(name="DL1", **cache),
        l2=l2,
        timings=MemoryTimings(),
    )


def make_trace(accesses):
    """accesses: list of ("fetch"|"load"|"store", line_number)."""
    trace = Trace(name="plan-unit")
    for kind, line in accesses:
        getattr(trace, kind)(0x40000000 + line * 32)
    return trace


def plan_for(config, accesses):
    compiled = CompiledTrace(make_trace(accesses), line_size=32)
    return compile_plan(config, compiled)


class TestSameLineRunElision:
    def test_repeated_fetches_collapse_to_one_step(self):
        plan = plan_for(make_config(), [("fetch", 0)] * 6)
        assert plan.n_steps == 1
        assert plan.elided == {"il1": 5, "dl1": 0}
        assert plan.n_accesses == 6
        assert plan.elided_fraction == pytest.approx(5 / 6)

    def test_alternating_lines_randomized_placement_never_elide(self):
        # Singleton rule: a different line always voids the guarantee.
        plan = plan_for(
            make_config(l1_placement="rm"),
            [("fetch", 0), ("fetch", 1)] * 4,
        )
        assert plan.n_steps == 8
        assert plan.elided == {"il1": 0, "dl1": 0}

    def test_alternating_sets_deterministic_placement_elide(self):
        # Per-set rule: lines 0 and 1 map (modulo) to different sets, so
        # each keeps its own guarantee and every revisit is a sure hit.
        plan = plan_for(
            make_config(l1_placement="modulo"),
            [("fetch", 0), ("fetch", 1)] * 4,
        )
        assert plan.n_steps == 2
        assert plan.elided == {"il1": 6, "dl1": 0}

    def test_same_set_conflict_voids_deterministic_guarantee(self):
        # Lines 0 and 8 share a set in an 8-set modulo cache: a potential
        # miss on one may evict the other, so nothing can be elided.
        plan = plan_for(
            make_config(l1_placement="modulo"),
            [("fetch", 0), ("fetch", 8)] * 4,
        )
        assert plan.n_steps == 8

    def test_slots_track_guarantees_independently(self):
        plan = plan_for(
            make_config(l1_placement="rm"),
            [("fetch", 0), ("load", 0), ("fetch", 0), ("load", 0)],
        )
        # Interleaving slots does not break the per-slot same-line runs.
        assert plan.n_steps == 2
        assert plan.elided == {"il1": 1, "dl1": 1}


class TestStoreRules:
    def test_write_through_store_never_establishes_guarantee(self):
        plan = plan_for(
            make_config(l1_write="write-through"),
            [("store", 0), ("store", 0), ("store", 0)],
        )
        # A WT store does not allocate, so no run ever forms.
        assert plan.n_steps == 3
        assert plan.elided_store_memory_accesses == 0

    def test_elided_wt_store_hit_without_l2_counts_memory_access(self):
        plan = plan_for(
            make_config(l1_write="write-through", with_l2=False),
            [("load", 0), ("store", 0), ("store", 0)],
        )
        assert plan.n_steps == 1
        assert plan.elided == {"il1": 0, "dl1": 2}
        assert plan.elided_store_memory_accesses == 2

    def test_sure_hit_wt_store_with_l2_stays_a_step(self):
        # Each one advances shared L2 state, so it cannot be elided; it is
        # flagged sure_hit so executors skip the L1 lookup.
        plan = plan_for(
            make_config(l1_write="write-through", with_l2=True),
            [("load", 0), ("store", 0), ("store", 0)],
        )
        assert plan.n_steps == 3
        assert plan.steps[1][3] and plan.steps[2][3]  # sure_hit
        assert plan.elided_store_memory_accesses == 0

    def test_write_back_store_hit_folds_dirty_bit_into_anchor(self):
        plan = plan_for(
            make_config(l1_write="write-back"),
            [("load", 0), ("store", 0), ("load", 0)],
        )
        assert plan.n_steps == 1
        anchor = plan.steps[0]
        assert not anchor[2]  # still the load...
        assert anchor[4]  # ...but dirty_after records the folded store
        assert plan.elided == {"il1": 0, "dl1": 2}


class TestLruGuardDrop:
    """A WT store to a *different* line may touch that line's LRU stamp,
    demoting the guaranteed line from MRU; the guard must be dropped."""

    def test_wt_store_to_other_line_drops_lru_guarantee(self):
        config = make_config(
            l1_placement="modulo", l1_replacement="lru",
            l1_write="write-through",
        )
        plan = plan_for(
            config,
            [("load", 0), ("store", 8), ("load", 0)],  # lines 0, 8 share a set
        )
        assert plan.n_steps == 3  # the final load is NOT elided

    def test_wt_store_keeps_random_replacement_guarantee(self):
        # Without stamps there is nothing a foreign store hit can corrupt.
        config = make_config(
            l1_placement="modulo", l1_replacement="random",
            l1_write="write-through",
        )
        plan = plan_for(
            config,
            [("load", 0), ("store", 8), ("load", 0)],
        )
        assert plan.n_steps == 2
        assert plan.elided == {"il1": 0, "dl1": 1}

    def test_wt_store_in_other_set_keeps_lru_guarantee(self):
        # Deterministic placement scopes guards per set: a store elsewhere
        # cannot touch this set's stamps.
        config = make_config(
            l1_placement="modulo", l1_replacement="lru",
            l1_write="write-through",
        )
        plan = plan_for(
            config,
            [("load", 0), ("store", 1), ("load", 0)],  # line 1: another set
        )
        assert plan.n_steps == 2

    def test_sure_hit_same_line_wt_store_keeps_guarantee(self):
        # A sure-hit store to the guaranteed line itself only re-touches
        # the MRU way — stamp order is preserved, the guard survives.
        config = make_config(
            l1_placement="modulo", l1_replacement="lru",
            l1_write="write-through", with_l2=True,
        )
        plan = plan_for(
            config,
            [("load", 0), ("store", 0), ("load", 0)],
        )
        # store stays a step (L2 traffic) but the final load is elided.
        assert plan.n_steps == 2


class TestSeedInvariance:
    def test_deterministic_lru_hierarchy_is_seed_invariant(self):
        config = make_config(l1_placement="modulo", l1_replacement="lru")
        plan = plan_for(config, [("fetch", i % 4) for i in range(20)])
        assert plan.seed_invariant
        assert all(sig.inert for sig in plan.signatures)

    def test_randomized_placement_is_never_inert(self):
        config = make_config(l1_placement="rm")
        plan = plan_for(config, [("fetch", i % 4) for i in range(20)])
        assert not plan.seed_invariant
        il1 = next(sig for sig in plan.signatures if sig.name == "il1")
        assert il1.randomized and not il1.inert
        assert il1.max_lines_per_set is None

    def test_undersubscribed_random_replacement_is_inert(self):
        # 4 distinct lines over 8 sets, 2 ways: no set ever overflows its
        # associativity, so the victim stream is never drawn.
        config = make_config(l1_placement="modulo", l1_replacement="random")
        plan = plan_for(config, [("fetch", i % 4) for i in range(20)])
        il1 = next(sig for sig in plan.signatures if sig.name == "il1")
        assert il1.inert
        assert il1.max_lines_per_set == 1

    def test_oversubscribed_random_replacement_is_not_inert(self):
        # Lines 0, 8, 16 all map (modulo, 8 sets) to set 0 in a 2-way
        # cache: victims are drawn, so seeds can diverge.
        config = make_config(l1_placement="modulo", l1_replacement="random")
        plan = plan_for(
            config, [("fetch", line) for line in (0, 8, 16)] * 3
        )
        il1 = next(sig for sig in plan.signatures if sig.name == "il1")
        assert not il1.inert
        assert il1.max_lines_per_set == 3
        assert not plan.seed_invariant


class TestPlanShape:
    def test_describe_summarises_the_plan(self):
        plan = plan_for(make_config(), [("fetch", 0)] * 4 + [("load", 1)])
        summary = plan.describe()
        assert summary["n_accesses"] == 5
        assert summary["n_steps"] == 2
        assert summary["elided"] == {"il1": 3, "dl1": 0}
        assert len(summary["signatures"]) == len(plan.signatures)

    def test_step_columns_mirror_steps(self):
        plan = plan_for(
            make_config(l1_write="write-back"),
            [("fetch", 0), ("load", 1), ("store", 1), ("fetch", 0)],
        )
        assert plan.step_slot.tolist() == [step[0] for step in plan.steps]
        assert plan.step_uid.tolist() == [step[1] for step in plan.steps]
        assert [bool(x) for x in plan.step_store] == [s[2] for s in plan.steps]
        assert [bool(x) for x in plan.step_dirty_after] == [
            s[4] for s in plan.steps
        ]

    def test_empty_trace_compiles_to_empty_plan(self):
        plan = plan_for(make_config(), [])
        assert plan.n_steps == 0
        assert plan.elided_fraction == 0.0
        assert plan.seed_invariant  # trivially: nothing can diverge


class TestPlanCoverage:
    """Every registered replacement policy and write policy compiles."""

    @pytest.mark.parametrize("replacement", ["random", "lru", "fifo", "plru"])
    def test_all_replacement_policies_compile(self, replacement):
        config = make_config(l1_replacement=replacement)
        plan = plan_for(config, [("fetch", 0), ("fetch", 1), ("fetch", 0)])
        assert plan.n_steps >= 1

    def test_write_through_l2_compiles(self):
        config = make_config(with_l2=True)
        object.__setattr__(config.l2, "write_policy", "write-through")
        plan = plan_for(config, [("fetch", 0), ("store", 1)])
        assert plan.n_steps == 2

    def test_fifo_hits_keep_guarantees(self):
        # FIFO never reorders on a hit, so revisits stay elidable even
        # where LRU-style policies would have to keep the step.
        plan = plan_for(
            make_config(l1_replacement="fifo"),
            [("fetch", 0)] * 4,
        )
        assert plan.elided == {"il1": 3, "dl1": 0}

    def test_unknown_replacement_raises(self):
        config = make_config()
        object.__setattr__(config.il1, "replacement", "clock")
        with pytest.raises(PlanUnsupported, match="clock"):
            plan_for(config, [("fetch", 0)])


class TestInKernelRouting:
    """The jit kernel's on-the-fly placement routing vs materialized maps.

    The kernel evaluates hrp/rm set indices per access from a compact
    routing recipe (:meth:`PlacementPolicy.routing_params`) instead of
    gathering from a prebuilt ``(lines, seeds)`` matrix; these properties
    pin the two forms bit-for-bit against each other over random line sets,
    seeds and geometries.
    """

    @staticmethod
    def _fill(policy, name, lines, seed):
        import numpy as np

        from repro.engine.jit import _fill_sets_hrp, _fill_sets_rm

        params = policy.routing_params()
        assert params is not None, f"{name} lost its routing recipe"
        rows = np.arange(len(lines), dtype=np.int64)
        out = np.zeros(len(lines), dtype=np.int64)
        with np.errstate(over="ignore"):
            if name == "hrp":
                _fill_sets_hrp(
                    out, lines, rows, np.uint64(seed),
                    params["index_bits"], params["hash_width"],
                    params["offset_bits"], params["address_bits"],
                )
            else:
                wire_a = np.array(params["wire_a"], dtype=np.int64)
                wire_b = np.array(params["wire_b"], dtype=np.int64)
                _fill_sets_rm(
                    out, lines, rows, np.uint64(seed),
                    params["index_bits"], params["n_controls"],
                    params["upper_bits"], len(wire_a),
                    params["offset_bits"], params["address_bits"],
                    wire_a, wire_b,
                )
        return out

    @given(
        name=st.sampled_from(["hrp", "rm"]),
        num_sets=st.sampled_from([8, 16, 64, 128]),
        line_ids=st.lists(
            st.integers(0, 2**20 - 1), min_size=1, max_size=40, unique=True
        ),
        seeds=st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_routing_matches_materialized_maps(
        self, name, num_sets, line_ids, seeds
    ):
        import numpy as np

        from repro.core.placement import PlacementGeometry, make_placement

        geometry = PlacementGeometry(
            num_sets=num_sets, line_size=32, address_bits=32
        )
        policy = make_placement(name, geometry, seed=0)
        # Byte addresses of whole lines: the kernel masks and shifts the
        # address itself, so feeding it anything but real addresses would
        # hide an offset-handling bug.
        lines = (np.array(line_ids, dtype=np.uint64) * 32) + 0x40000000
        want = policy.set_index_matrix(lines, [int(s) for s in seeds])
        for column, seed in enumerate(seeds):
            got = self._fill(policy, name, lines, seed)
            assert got.tolist() == [int(x) for x in want[:, column]]
            assert ((got >= 0) & (got < num_sets)).all()

    def test_routing_kinds_reports_the_strategy(self):
        from repro.engine import JitEngine
        from repro.platform.leon3 import platform_setup
        from repro.workloads.eembc import eembc_trace

        compiled = CompiledTrace(eembc_trace("bitmnp"))
        simulator = JitEngine(force_python=True).simulator(
            platform_setup("rm"), compiled
        )
        kinds = simulator.routing_kinds()
        # The leon3 "rm" setup routes both L1s through the switch network
        # and the L2 through the parametric hash — both in-kernel.
        assert kinds == ["rm", "rm", "hrp"]
