"""Smoke tests for the top-level public API and the example scripts."""

import runpy
import sys
from pathlib import Path

import pytest

import repro

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        trace = repro.eembc_trace("rspeed", scale=0.25)
        campaign = repro.run_campaign(
            trace, repro.platform_setup("rm"), runs=30, master_seed=1
        )
        result = repro.apply_mbpta(campaign.execution_times)
        assert result.pwcet_at(1e-15) >= campaign.high_water_mark

    def test_placement_factory_exported(self):
        geometry = repro.PlacementGeometry(num_sets=64, line_size=32)
        policy = repro.make_placement("rm", geometry, seed=1)
        assert policy.set_index(0) == 0  # all-zero index is a fixed point


class TestDesignDocumentation:
    """DESIGN.md / EXPERIMENTS.md must exist and reference the experiments."""

    def test_design_md_lists_experiments(self):
        text = (EXAMPLES_DIR.parent / "DESIGN.md").read_text()
        for experiment in ("table1", "table2", "fig4a", "fig4b", "fig5", "avg_perf"):
            assert experiment in text

    def test_readme_exists(self):
        assert (EXAMPLES_DIR.parent / "README.md").exists()

    def test_experiments_md_exists(self):
        assert (EXAMPLES_DIR.parent / "EXPERIMENTS.md").exists()


@pytest.mark.slow
class TestExamples:
    """Each example script must run end-to-end (at reduced run counts)."""

    @pytest.mark.parametrize(
        "script, argv",
        [
            ("quickstart.py", []),
            ("eembc_pwcet_campaign.py", ["40"]),
            ("synthetic_footprints.py", ["30"]),
            ("hardware_costs.py", []),
            ("isa_program_demo.py", ["40"]),
        ],
    )
    def test_example_runs(self, script, argv, capsys, monkeypatch):
        path = EXAMPLES_DIR / script
        monkeypatch.setattr(sys, "argv", [str(path)] + argv)
        runpy.run_path(str(path), run_name="__main__")
        output = capsys.readouterr().out
        assert len(output) > 100
