"""The run-table query engine (repro.study.runtable + ``repro query``).

The store is the source of truth; what these tests certify is the *join*:
every campaign entry becomes a row (one per analysis, a bare row without),
study provenance labels rows, assembly is incremental through the
``runtable/rows.json`` cache (and invalidates on new analyses), filters and
restricted ``where`` predicates behave, exports stay consistent with the
shared formatter, and the ``repro query`` CLI is a thin shell over all of
it.
"""

import json

import pytest

from repro.__main__ import main
from repro.analysis.campaign import CampaignResult
from repro.study import (
    HierarchySpec,
    ResultStore,
    RunTable,
    Scenario,
    WorkloadSpec,
    build_run_table,
)
from repro.study import runtable as runtable_module


def scenario_for(setup="rm", seed=99, runs=24):
    return Scenario(
        workload=WorkloadSpec.synthetic(4 * 1024, iterations=2),
        hierarchy=HierarchySpec.named(setup),
        runs=runs,
        master_seed=seed,
    )


def analysis_payload(estimator="gumbel", passed=True, pwcet=None):
    verdict = {"passed": passed, "statistic": 0.1, "threshold": 0.5}
    return {
        "version": 1,
        "estimator": estimator,
        "config": {"block_size": 20},
        "fit": {"location": 1.0, "scale": 2.0},
        "block_size": 20,
        "discarded_runs": 0,
        "assessment": {
            "independence": dict(verdict),
            "identical_distribution": dict(verdict),
            "gumbel_convergence": dict(verdict),
        },
        "pwcet": pwcet or {"1e-12": 1500.0, "1e-15": 1800.0},
        "pwcet_ci": {},
    }


def populate(store, setups=("rm", "hrp"), with_analyses=True):
    """Entries for each setup (+ analyses + provenance); returns spec hashes."""
    hashes = {}
    for index, setup in enumerate(setups):
        scenario = scenario_for(setup=setup, seed=100 + index)
        times = [1000 + 13 * i + 100 * index for i in range(scenario.runs)]
        campaign = CampaignResult(
            workload="synthetic_4KB",
            setup=setup,
            execution_times=times,
            master_seed=scenario.effective_seed,
        )
        store.save(scenario, campaign, {"il1_miss_rate": 0.1 * (index + 1)})
        spec_hash = scenario.spec_hash()
        if with_analyses:
            store.save_analysis(
                spec_hash,
                f"a{index}",
                analysis_payload(pwcet={"1e-12": 1500.0 + index, "1e-15": 1800.0 + index}),
            )
        store.record_study("smoke", [spec_hash])
        hashes[setup] = spec_hash
    return hashes


class TestBuild:
    def test_one_row_per_analysis_with_campaign_statistics(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        hashes = populate(store, setups=("rm",))
        table = build_run_table(store)
        assert len(table.rows) == 1
        (row,) = table.rows
        assert row["study"] == "smoke"
        assert row["workload"] == "synthetic_4KB"
        assert row["setup"] == "rm"
        assert row["estimator"] == "gumbel"
        assert row["admitted"] is True
        assert row["spec_hash"] == hashes["rm"]
        assert row["analysis_hash"] == "a0"
        times = [1000 + 13 * i for i in range(24)]
        assert row["mean_cycles"] == sum(times) / len(times)
        assert row["max_cycles"] == max(times)
        assert row["il1_miss_rate"] == pytest.approx(0.1)
        assert row["pwcet"] == {"1e-12": 1500.0, "1e-15": 1800.0}

    def test_entry_without_analysis_gets_a_bare_row(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        populate(store, setups=("rm",), with_analyses=False)
        (row,) = build_run_table(store).rows
        assert row["estimator"] == ""
        assert row["admitted"] is None
        assert row["pwcet"] == {}

    def test_multiple_analyses_fan_out_to_multiple_rows(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        hashes = populate(store, setups=("rm",))
        store.save_analysis(
            hashes["rm"], "b0", analysis_payload(estimator="exponential", passed=False)
        )
        table = build_run_table(store)
        # Rows sort by estimator within a spec: exponential before gumbel.
        assert [row["analysis_hash"] for row in table.rows] == ["b0", "a0"]
        by_hash = {row["analysis_hash"]: row for row in table.rows}
        assert by_hash["b0"]["estimator"] == "exponential"
        assert by_hash["b0"]["admitted"] is False

    def test_probabilities_are_sorted_most_extreme_last(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        populate(store)
        assert build_run_table(store).probabilities() == ["1e-12", "1e-15"]


class TestIncrementalCache:
    def test_second_build_is_served_from_the_row_cache(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        populate(store)
        first = build_run_table(store)
        assert (store.runtable_root / "rows.json").is_file()

        def boom(*args, **kwargs):  # pragma: no cover - must not be reached
            raise AssertionError("cache miss: _rows_for_spec re-invoked")

        monkeypatch.setattr(runtable_module, "_rows_for_spec", boom)
        second = build_run_table(store)
        assert second.rows == first.rows

    def test_new_analysis_invalidates_just_that_spec(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        hashes = populate(store)
        build_run_table(store)
        store.save_analysis(hashes["rm"], "zz", analysis_payload(estimator="weibull"))
        table = build_run_table(store)
        estimators = {row["analysis_hash"]: row["estimator"] for row in table.rows}
        assert estimators[("zz")] == "weibull"

    def test_refresh_forces_a_rebuild(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "store")
        populate(store, setups=("rm",))
        build_run_table(store)
        calls = []
        original = runtable_module._rows_for_spec

        def counting(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(runtable_module, "_rows_for_spec", counting)
        build_run_table(store, refresh=True)
        assert calls

    def test_corrupt_cache_is_ignored(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        populate(store, setups=("rm",))
        first = build_run_table(store)
        (store.runtable_root / "rows.json").write_text("{ not json")
        assert build_run_table(store).rows == first.rows


class TestFilter:
    def _table(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        populate(store)
        return build_run_table(store)

    def test_exact_match_fields(self, tmp_path):
        table = self._table(tmp_path)
        assert {row["setup"] for row in table.filter(setup="hrp").rows} == {"hrp"}
        assert table.filter(study="smoke").rows == table.rows
        assert table.filter(study="absent").rows == []
        assert table.filter(workload="synthetic_4KB", estimator="gumbel").rows == table.rows

    def test_where_predicate_with_pwcet_namespace(self, tmp_path):
        table = self._table(tmp_path)
        filtered = table.filter(where="admitted and pwcet['1e-15'] > 1800.5")
        assert [row["setup"] for row in filtered.rows] == ["hrp"]

    def test_where_syntax_error_raises_value_error(self, tmp_path):
        table = self._table(tmp_path)
        with pytest.raises(ValueError):
            table.filter(where="admitted and and")

    def test_where_unknown_name_raises_value_error(self, tmp_path):
        table = self._table(tmp_path)
        with pytest.raises(ValueError):
            table.filter(where="no_such_column > 1")

    def test_where_row_level_type_errors_drop_the_row(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        populate(store, setups=("rm",), with_analyses=False)  # admitted is None
        table = build_run_table(store)
        assert table.filter(where="admitted > 0").rows == []

    def test_where_cannot_reach_builtins(self, tmp_path):
        table = self._table(tmp_path)
        with pytest.raises(ValueError):
            table.filter(where="__import__('os').getcwd()")


class TestExport:
    def test_csv_expands_pwcet_columns(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        populate(store, setups=("rm",))
        table = build_run_table(store)
        target = tmp_path / "table.csv"
        table.to_csv(target)
        lines = target.read_text().splitlines()
        header = lines[0].split(",")
        assert "pwcet@1e-12" in header and "pwcet@1e-15" in header
        assert len(lines) == 2
        row = dict(zip(header, lines[1].split(",")))
        assert row["setup"] == "rm"
        assert float(row["pwcet@1e-15"]) == 1800.0

    def test_parquet_requires_pandas_and_pyarrow(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        populate(store, setups=("rm",))
        table = build_run_table(store)
        try:
            import pandas  # noqa: F401
            import pyarrow  # noqa: F401
        except ImportError:
            with pytest.raises(RuntimeError):
                table.to_parquet(tmp_path / "table.parquet")
        else:  # pragma: no cover - environment-dependent
            table.to_parquet(tmp_path / "table.parquet")
            assert (tmp_path / "table.parquet").is_file()

    def test_export_columns_cover_every_row_field(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        populate(store)
        table = build_run_table(store)
        headers = table.export_columns()
        for name in runtable_module.ROW_FIELDS:
            assert name in headers


class TestQueryCli:
    def test_runs_renders_a_table(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "store")
        populate(store)
        assert main(["query", "runs", "--store", str(store.root)]) == 0
        out = capsys.readouterr().out
        assert "run table: 2 row(s)" in out
        assert "rm" in out and "hrp" in out

    def test_runs_with_filters_and_json_format(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "store")
        populate(store)
        assert (
            main(
                [
                    "query",
                    "runs",
                    "--store",
                    str(store.root),
                    "--setup",
                    "hrp",
                    "--where",
                    "admitted",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        rows = json.loads(capsys.readouterr().out)
        assert [row["setup"] for row in rows] == ["hrp"]

    def test_bad_where_is_a_usage_error(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        populate(store)
        with pytest.raises(SystemExit) as excinfo:
            main(["query", "runs", "--store", str(store.root), "--where", "syntax error ("])
        assert excinfo.value.code == 2

    def test_export_writes_csv(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "store")
        populate(store)
        target = tmp_path / "out.csv"
        assert main(["query", "export", str(target), "--store", str(store.root)]) == 0
        assert "exported 2 row(s)" in capsys.readouterr().out
        assert target.read_text().splitlines()[0].startswith("study,")

    def test_compare_joins_setups_on_workload_and_estimator(self, tmp_path, capsys):
        store = ResultStore(tmp_path / "store")
        populate(store)
        assert (
            main(
                [
                    "query",
                    "compare",
                    "rm",
                    "hrp",
                    "--store",
                    str(store.root),
                    "--cutoff",
                    "1e-15",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "synthetic_4KB" in out
        assert "gumbel" in out
        # rm pwcet 1800.0 <= hrp 1801.0, so rm wins the comparison row.
        assert "rm" in out
