"""Tests for the EVT / Gumbel machinery."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.mbpta.evt import (
    GumbelFit,
    PWcetCurve,
    block_maxima,
    empirical_ccdf,
    fit_gumbel,
)


class TestBlockMaxima:
    def test_basic(self):
        assert block_maxima([1, 5, 2, 8, 3, 9], 2) == [5, 8, 9]

    def test_partial_block_discarded(self):
        assert block_maxima([1, 2, 3, 4, 5], 2) == [2, 4]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            block_maxima([1], 2)

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            block_maxima([1, 2], 0)


class TestGumbelFit:
    def test_cdf_survival_complement(self):
        fit = GumbelFit(location=100.0, scale=5.0)
        for value in (80, 100, 120, 200):
            assert fit.cdf(value) + fit.survival(value) == pytest.approx(1.0)

    def test_quantile_inverts_survival(self):
        fit = GumbelFit(location=100.0, scale=5.0)
        for probability in (0.5, 1e-3, 1e-9, 1e-15):
            assert fit.survival(fit.quantile(probability)) == pytest.approx(
                probability, rel=1e-6
            )

    def test_quantile_monotone_in_probability(self):
        fit = GumbelFit(location=0.0, scale=1.0)
        assert fit.quantile(1e-15) > fit.quantile(1e-12) > fit.quantile(1e-3)

    def test_mean(self):
        fit = GumbelFit(location=10.0, scale=2.0)
        assert fit.mean == pytest.approx(10.0 + 0.5772156649 * 2.0)

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            GumbelFit(location=0.0, scale=0.0)

    def test_quantile_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            GumbelFit(0.0, 1.0).quantile(0.0)

    def test_matches_scipy_gumbel(self):
        fit = GumbelFit(location=50.0, scale=7.0)
        for value in (40.0, 55.0, 90.0):
            assert fit.cdf(value) == pytest.approx(
                stats.gumbel_r.cdf(value, loc=50.0, scale=7.0)
            )


class TestFitGumbel:
    def test_recovers_known_parameters_pwm(self):
        rng = np.random.default_rng(1)
        samples = stats.gumbel_r.rvs(loc=1000.0, scale=30.0, size=4000, random_state=rng)
        fit = fit_gumbel(samples, method="pwm")
        assert fit.location == pytest.approx(1000.0, rel=0.02)
        assert fit.scale == pytest.approx(30.0, rel=0.10)

    def test_recovers_known_parameters_mle(self):
        rng = np.random.default_rng(2)
        samples = stats.gumbel_r.rvs(loc=500.0, scale=12.0, size=3000, random_state=rng)
        fit = fit_gumbel(samples, method="mle")
        assert fit.location == pytest.approx(500.0, rel=0.02)
        assert fit.scale == pytest.approx(12.0, rel=0.10)

    def test_degenerate_sample_gets_tiny_scale(self):
        fit = fit_gumbel([100.0] * 50)
        assert fit.location == pytest.approx(100.0)
        assert fit.scale < 1e-6

    def test_block_maxima_shift_location_upwards(self):
        rng = np.random.default_rng(3)
        samples = list(stats.gumbel_r.rvs(loc=100.0, scale=10.0, size=2000, random_state=rng))
        raw = fit_gumbel(samples, block_size=1)
        blocked = fit_gumbel(samples, block_size=20)
        assert blocked.location > raw.location

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            fit_gumbel([1.0])

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            fit_gumbel([1.0, 2.0, 3.0], method="moments")

    @given(
        location=st.floats(10, 1e6),
        scale=st.floats(0.5, 1e4),
    )
    @settings(max_examples=20, deadline=None)
    def test_fit_is_scale_equivariant(self, location, scale):
        rng = np.random.default_rng(7)
        base = stats.gumbel_r.rvs(loc=0.0, scale=1.0, size=500, random_state=rng)
        fit = fit_gumbel(list(location + scale * base), method="pwm")
        assert fit.location == pytest.approx(location, rel=0.2, abs=3 * scale)
        assert fit.scale == pytest.approx(scale, rel=0.3, abs=location * 1e-9)


class TestPWcetCurve:
    def test_pwcet_monotone_in_cutoff(self):
        curve = PWcetCurve(GumbelFit(location=1000.0, scale=20.0), block_size=10)
        assert curve.pwcet(1e-15) > curve.pwcet(1e-12) > curve.pwcet(1e-6)

    def test_exceedance_inverts_pwcet(self):
        curve = PWcetCurve(GumbelFit(location=1000.0, scale=20.0), block_size=10)
        for probability in (1e-6, 1e-12):
            assert curve.exceedance(curve.pwcet(probability)) == pytest.approx(
                probability, rel=1e-6
            )

    def test_block_size_deflates_per_run_exceedance(self):
        # For the *same* block-maxima fit, declaring a larger block size
        # means each run contributes a smaller share of the block's
        # exceedance probability, so the per-run pWCET at a fixed cutoff is
        # lower (in practice larger blocks also shift the fit upwards,
        # which is covered by test_block_maxima_shift_location_upwards).
        fit = GumbelFit(location=1000.0, scale=20.0)
        small = PWcetCurve(fit, block_size=1).pwcet(1e-12)
        large = PWcetCurve(fit, block_size=50).pwcet(1e-12)
        assert large <= small
        assert PWcetCurve(fit, block_size=50).exceedance(small) <= 1e-12

    def test_ccdf_points_are_monotone(self):
        curve = PWcetCurve(GumbelFit(location=1000.0, scale=20.0), block_size=10)
        points = curve.ccdf_points(min_probability=1e-16, points_per_decade=2)
        values = [value for value, _ in points]
        probabilities = [probability for _, probability in points]
        assert values == sorted(values)
        assert probabilities == sorted(probabilities, reverse=True)

    def test_rejects_bad_probability(self):
        curve = PWcetCurve(GumbelFit(0.0, 1.0))
        with pytest.raises(ValueError):
            curve.pwcet(0.0)
        with pytest.raises(ValueError):
            curve.ccdf_points(min_probability=0.0)


class TestEmpiricalCcdf:
    def test_simple_case(self):
        points = empirical_ccdf([1, 2, 2, 4])
        assert points[0] == (1.0, 0.75)
        assert points[-1] == (4.0, 0.0)

    def test_probabilities_decrease(self):
        points = empirical_ccdf([5, 1, 3, 3, 2, 8, 13])
        probabilities = [probability for _, probability in points]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            empirical_ccdf([])

    def test_gumbel_sample_ccdf_close_to_model(self):
        rng = np.random.default_rng(5)
        fit = GumbelFit(location=200.0, scale=10.0)
        samples = stats.gumbel_r.rvs(loc=200.0, scale=10.0, size=5000, random_state=rng)
        points = empirical_ccdf(list(samples))
        mid_value, mid_probability = points[len(points) // 2]
        assert fit.survival(mid_value) == pytest.approx(mid_probability, abs=0.05)
