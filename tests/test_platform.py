"""Tests for the LEON3 platform factory."""

import pytest

from repro.platform.leon3 import (
    Leon3Parameters,
    PLATFORM_SETUPS,
    leon3_hierarchy,
    platform_setup,
)


class TestParameters:
    def test_defaults_follow_paper(self):
        params = Leon3Parameters()
        assert params.l1_size_bytes == 16 * 1024
        assert params.l1_ways == 4
        assert params.l2_size_bytes == 128 * 1024
        assert params.line_size == 32

    def test_timings_property(self):
        timings = Leon3Parameters(l2_hit_cycles=12).timings
        assert timings.l2_hit == 12


class TestSetups:
    def test_all_named_setups_build(self):
        for name in PLATFORM_SETUPS:
            config = platform_setup(name)
            assert config.il1.num_sets == 128

    def test_unknown_setup_rejected(self):
        with pytest.raises(ValueError):
            platform_setup("fancy")

    def test_rm_and_hrp_setups_differ_in_l1_only(self):
        rm = platform_setup("rm")
        hrp = platform_setup("hrp")
        assert rm.il1.placement == "rm" and hrp.il1.placement == "hrp"
        assert rm.l2.placement == hrp.l2.placement == "hrp"

    def test_deterministic_setups_use_lru(self):
        modulo = platform_setup("modulo")
        assert modulo.il1.replacement == "lru"
        assert modulo.l2.replacement == "lru"

    def test_without_l2(self):
        assert platform_setup("rm", with_l2=False).l2 is None

    def test_custom_parameters_are_applied(self):
        params = Leon3Parameters(l2_size_bytes=32 * 1024)
        config = leon3_hierarchy(parameters=params)
        assert config.l2.size_bytes == 32 * 1024
        assert config.l2.num_sets == 256
